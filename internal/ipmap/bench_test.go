package ipmap

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"testing"
)

func BenchmarkLookup(b *testing.B) {
	var tbl Table
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 10000; i++ {
		p := fmt.Sprintf("10.%d.%d.0/24", rng.IntN(256), rng.IntN(256))
		tbl.MustAdd(p, ASN(i+1))
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, byte(rng.IntN(256)), byte(rng.IntN(256)), byte(rng.IntN(256))})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkAdd(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	prefixes := make([]netip.Prefix, 1024)
	for i := range prefixes {
		prefixes[i] = netip.PrefixFrom(
			netip.AddrFrom4([4]byte{10, byte(rng.IntN(256)), byte(rng.IntN(256)), 0}), 24)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var tbl Table
	for i := 0; i < b.N; i++ {
		if err := tbl.Add(prefixes[i%len(prefixes)], ASN(i)); err != nil {
			b.Fatal(err)
		}
	}
}
