package ipmap

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestLookupLongestPrefix(t *testing.T) {
	var tbl Table
	tbl.MustAdd("10.0.0.0/8", 100)
	tbl.MustAdd("10.1.0.0/16", 200)
	tbl.MustAdd("10.1.2.0/24", 300)
	tbl.MustAdd("0.0.0.0/0", 1)

	tests := []struct {
		addr string
		want ASN
	}{
		{"10.1.2.3", 300},
		{"10.1.3.4", 200},
		{"10.9.9.9", 100},
		{"192.168.1.1", 1},
	}
	for _, tt := range tests {
		got, ok := tbl.Lookup(netip.MustParseAddr(tt.addr))
		if !ok || got != tt.want {
			t.Errorf("Lookup(%s) = %v/%v, want %v", tt.addr, got, ok, tt.want)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	var tbl Table
	tbl.MustAdd("10.0.0.0/8", 100)
	if _, ok := tbl.Lookup(netip.MustParseAddr("11.0.0.1")); ok {
		t.Error("lookup outside any prefix should miss")
	}
	if _, ok := tbl.Lookup(netip.Addr{}); ok {
		t.Error("invalid address should miss")
	}
	var empty Table
	if _, ok := empty.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("empty table should miss")
	}
}

func TestIPv6(t *testing.T) {
	var tbl Table
	tbl.MustAdd("2001:db8::/32", 500)
	tbl.MustAdd("2001:db8:1::/48", 600)
	got, ok := tbl.Lookup(netip.MustParseAddr("2001:db8:1::5"))
	if !ok || got != 600 {
		t.Errorf("IPv6 LPM = %v/%v, want 600", got, ok)
	}
	got, ok = tbl.Lookup(netip.MustParseAddr("2001:db8:2::5"))
	if !ok || got != 500 {
		t.Errorf("IPv6 fallback = %v/%v, want 500", got, ok)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("2002::1")); ok {
		t.Error("IPv6 miss expected")
	}
}

func TestFamiliesAreSeparate(t *testing.T) {
	var tbl Table
	tbl.MustAdd("::/0", 6)
	if _, ok := tbl.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Error("IPv6 default route must not cover IPv4 addresses")
	}
}

func TestOverwriteAndLen(t *testing.T) {
	var tbl Table
	tbl.MustAdd("10.0.0.0/8", 100)
	tbl.MustAdd("10.0.0.0/8", 111)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1 after overwrite", tbl.Len())
	}
	got, _ := tbl.Lookup(netip.MustParseAddr("10.0.0.1"))
	if got != 111 {
		t.Errorf("overwrite: got %v, want 111", got)
	}
}

func TestAddInvalid(t *testing.T) {
	var tbl Table
	if err := tbl.Add(netip.Prefix{}, 1); err == nil {
		t.Error("Add of invalid prefix should error")
	}
}

func TestHostRoutes(t *testing.T) {
	var tbl Table
	tbl.MustAdd("192.0.2.1/32", 42)
	got, ok := tbl.Lookup(netip.MustParseAddr("192.0.2.1"))
	if !ok || got != 42 {
		t.Errorf("host route = %v/%v, want 42", got, ok)
	}
	if _, ok := tbl.Lookup(netip.MustParseAddr("192.0.2.2")); ok {
		t.Error("neighboring address must not match a /32")
	}
}

func TestEntries(t *testing.T) {
	var tbl Table
	tbl.MustAdd("10.1.0.0/16", 200)
	tbl.MustAdd("10.0.0.0/8", 100)
	tbl.MustAdd("2001:db8::/32", 500)
	es := tbl.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries len = %d, want 3", len(es))
	}
	seen := map[string]ASN{}
	for _, e := range es {
		seen[e.Prefix.String()] = e.ASN
	}
	if seen["10.0.0.0/8"] != 100 || seen["10.1.0.0/16"] != 200 || seen["2001:db8::/32"] != 500 {
		t.Errorf("Entries = %+v", es)
	}
}

// Property: for random /24 insertions, every address inside an inserted /24
// resolves to that /24's ASN (no broader prefix inserted), and the
// round-trip through Entries preserves the table.
func TestRandomPrefixesProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	f := func() bool {
		var tbl Table
		type pfx struct {
			p netip.Prefix
			a ASN
		}
		var inserted []pfx
		for i := 0; i < 50; i++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.IntN(223) + 1), byte(rng.IntN(256)), byte(rng.IntN(256)), 0})
			p := netip.PrefixFrom(addr, 24)
			a := ASN(rng.IntN(65000) + 1)
			if err := tbl.Add(p, a); err != nil {
				return false
			}
			inserted = append(inserted, pfx{p.Masked(), a})
		}
		// later duplicates overwrite earlier: build expectation map
		want := map[netip.Prefix]ASN{}
		for _, in := range inserted {
			want[in.p] = in.a
		}
		for p, a := range want {
			host := netip.AddrFrom4([4]byte{p.Addr().As4()[0], p.Addr().As4()[1], p.Addr().As4()[2], byte(rng.IntN(256))})
			got, ok := tbl.Lookup(host)
			if !ok || got != a {
				return false
			}
		}
		return tbl.Len() == len(want)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
