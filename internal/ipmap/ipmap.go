// Package ipmap implements longest-prefix-match lookup from IP addresses to
// autonomous system numbers, the "IP to AS mapping ... using longest prefix
// match" step of the paper's alarm aggregation (§6).
//
// The table is a binary radix trie over address bits, one per IP family.
// In the paper the table is fed from BGP routing data; in this reproduction
// it is fed from the simulator's prefix announcements, but the lookup
// semantics are identical.
package ipmap

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
)

// ASN is an autonomous system number. Zero means "unknown".
type ASN uint32

// String renders the conventional "ASxxxx" form. strconv instead of
// fmt.Sprintf: aggregation summaries and reports format thousands of these
// and the reflection path allocates several times per call.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

type node struct {
	children [2]*node
	asn      ASN
	valid    bool
}

// Table maps IP prefixes to origin ASNs with longest-prefix-match lookup.
// The zero value is an empty table ready for use. Table is not safe for
// concurrent mutation; concurrent lookups after all inserts are safe.
type Table struct {
	v4, v6 *node
	size   int
}

// Add inserts a prefix→ASN mapping, overwriting any previous mapping for the
// exact same prefix. Invalid prefixes are rejected with an error.
func (t *Table) Add(prefix netip.Prefix, asn ASN) error {
	if !prefix.IsValid() {
		return fmt.Errorf("ipmap: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	root := &t.v6
	if prefix.Addr().Is4() {
		root = &t.v4
	}
	if *root == nil {
		*root = &node{}
	}
	n := *root
	bits := prefix.Bits()
	addr := prefix.Addr()
	for i := 0; i < bits; i++ {
		b := bit(addr, i)
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	if !n.valid {
		t.size++
	}
	n.asn = asn
	n.valid = true
	return nil
}

// MustAdd is Add for statically known prefixes; it panics on error.
func (t *Table) MustAdd(prefix string, asn ASN) {
	if err := t.Add(netip.MustParsePrefix(prefix), asn); err != nil {
		panic(err)
	}
}

// Lookup returns the ASN of the longest matching prefix for addr.
// ok is false when no prefix covers the address.
func (t *Table) Lookup(addr netip.Addr) (asn ASN, ok bool) {
	if !addr.IsValid() {
		return 0, false
	}
	n := t.v6
	maxBits := 128
	if addr.Is4() {
		n = t.v4
		maxBits = 32
	}
	for i := 0; n != nil; i++ {
		if n.valid {
			asn, ok = n.asn, true
		}
		if i >= maxBits {
			break
		}
		n = n.children[bit(addr, i)]
	}
	return asn, ok
}

// Len returns the number of distinct prefixes in the table.
func (t *Table) Len() int { return t.size }

// Entry is one prefix→ASN mapping, as returned by Entries.
type Entry struct {
	Prefix netip.Prefix
	ASN    ASN
}

// Entries returns all mappings sorted by prefix string; useful for dumps and
// tests.
func (t *Table) Entries() []Entry {
	var out []Entry
	var walk func(n *node, addr [16]byte, depth int, is4 bool)
	walk = func(n *node, addr [16]byte, depth int, is4 bool) {
		if n == nil {
			return
		}
		if n.valid {
			var p netip.Prefix
			if is4 {
				var a4 [4]byte
				copy(a4[:], addr[:4])
				p = netip.PrefixFrom(netip.AddrFrom4(a4), depth)
			} else {
				p = netip.PrefixFrom(netip.AddrFrom16(addr), depth)
			}
			out = append(out, Entry{Prefix: p, ASN: n.asn})
		}
		walk(n.children[0], addr, depth+1, is4)
		one := addr
		one[depth/8] |= 1 << (7 - depth%8)
		walk(n.children[1], one, depth+1, is4)
	}
	walk(t.v4, [16]byte{}, 0, true)
	walk(t.v6, [16]byte{}, 0, false)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// Cache memoizes Lookup results by a dense uint32 identifier (an
// ident.AddrID in practice — ipmap stays ident-agnostic so the dependency
// only points one way). The first lookup for an id walks the radix trie;
// every later lookup is one slice index. Aggregation resolves the same few
// alarm addresses every bin, so the trie walk amortizes to zero.
//
// The cache assumes id→addr is stable (interned) and the table is no
// longer mutated — the same contract concurrent Table lookups already
// require. Cache itself is not safe for concurrent use; the single-writer
// aggregation stage owns it.
type Cache struct {
	table *Table
	memo  []memoEntry
}

type memoEntry struct {
	asn   ASN
	state uint8 // 0 = unresolved, 1 = hit, 2 = miss
}

// NewCache returns an empty memoizing cache over the table.
func NewCache(t *Table) *Cache { return &Cache{table: t} }

// Lookup resolves addr's ASN, memoized under id. The addr is consulted
// only on the first call for a given id.
func (c *Cache) Lookup(id uint32, addr netip.Addr) (ASN, bool) {
	if int(id) < len(c.memo) {
		switch e := c.memo[id]; e.state {
		case 1:
			return e.asn, true
		case 2:
			return 0, false
		}
	} else {
		n := int(id) + 1
		if n < 2*len(c.memo) {
			n = 2 * len(c.memo)
		}
		grown := make([]memoEntry, n)
		copy(grown, c.memo)
		c.memo = grown
	}
	asn, ok := c.table.Lookup(addr)
	e := memoEntry{asn: asn, state: 2}
	if ok {
		e.state = 1
	}
	c.memo[id] = e
	return asn, ok
}

// bit returns the i-th most significant bit of the address (0-indexed within
// the address family: 0..31 for IPv4, 0..127 for IPv6).
func bit(addr netip.Addr, i int) int {
	if addr.Is4() {
		a := addr.As4()
		return int(a[i/8]>>(7-i%8)) & 1
	}
	a := addr.As16()
	return int(a[i/8]>>(7-i%8)) & 1
}
