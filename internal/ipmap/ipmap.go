// Package ipmap implements longest-prefix-match lookup from IP addresses to
// autonomous system numbers, the "IP to AS mapping ... using longest prefix
// match" step of the paper's alarm aggregation (§6).
//
// The table is a binary radix trie over address bits, one per IP family.
// In the paper the table is fed from BGP routing data; in this reproduction
// it is fed from the simulator's prefix announcements, but the lookup
// semantics are identical.
package ipmap

import (
	"fmt"
	"net/netip"
	"sort"
)

// ASN is an autonomous system number. Zero means "unknown".
type ASN uint32

// String renders the conventional "ASxxxx" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

type node struct {
	children [2]*node
	asn      ASN
	valid    bool
}

// Table maps IP prefixes to origin ASNs with longest-prefix-match lookup.
// The zero value is an empty table ready for use. Table is not safe for
// concurrent mutation; concurrent lookups after all inserts are safe.
type Table struct {
	v4, v6 *node
	size   int
}

// Add inserts a prefix→ASN mapping, overwriting any previous mapping for the
// exact same prefix. Invalid prefixes are rejected with an error.
func (t *Table) Add(prefix netip.Prefix, asn ASN) error {
	if !prefix.IsValid() {
		return fmt.Errorf("ipmap: invalid prefix %v", prefix)
	}
	prefix = prefix.Masked()
	root := &t.v6
	if prefix.Addr().Is4() {
		root = &t.v4
	}
	if *root == nil {
		*root = &node{}
	}
	n := *root
	bits := prefix.Bits()
	addr := prefix.Addr()
	for i := 0; i < bits; i++ {
		b := bit(addr, i)
		if n.children[b] == nil {
			n.children[b] = &node{}
		}
		n = n.children[b]
	}
	if !n.valid {
		t.size++
	}
	n.asn = asn
	n.valid = true
	return nil
}

// MustAdd is Add for statically known prefixes; it panics on error.
func (t *Table) MustAdd(prefix string, asn ASN) {
	if err := t.Add(netip.MustParsePrefix(prefix), asn); err != nil {
		panic(err)
	}
}

// Lookup returns the ASN of the longest matching prefix for addr.
// ok is false when no prefix covers the address.
func (t *Table) Lookup(addr netip.Addr) (asn ASN, ok bool) {
	if !addr.IsValid() {
		return 0, false
	}
	n := t.v6
	maxBits := 128
	if addr.Is4() {
		n = t.v4
		maxBits = 32
	}
	for i := 0; n != nil; i++ {
		if n.valid {
			asn, ok = n.asn, true
		}
		if i >= maxBits {
			break
		}
		n = n.children[bit(addr, i)]
	}
	return asn, ok
}

// Len returns the number of distinct prefixes in the table.
func (t *Table) Len() int { return t.size }

// Entry is one prefix→ASN mapping, as returned by Entries.
type Entry struct {
	Prefix netip.Prefix
	ASN    ASN
}

// Entries returns all mappings sorted by prefix string; useful for dumps and
// tests.
func (t *Table) Entries() []Entry {
	var out []Entry
	var walk func(n *node, addr [16]byte, depth int, is4 bool)
	walk = func(n *node, addr [16]byte, depth int, is4 bool) {
		if n == nil {
			return
		}
		if n.valid {
			var p netip.Prefix
			if is4 {
				var a4 [4]byte
				copy(a4[:], addr[:4])
				p = netip.PrefixFrom(netip.AddrFrom4(a4), depth)
			} else {
				p = netip.PrefixFrom(netip.AddrFrom16(addr), depth)
			}
			out = append(out, Entry{Prefix: p, ASN: n.asn})
		}
		walk(n.children[0], addr, depth+1, is4)
		one := addr
		one[depth/8] |= 1 << (7 - depth%8)
		walk(n.children[1], one, depth+1, is4)
	}
	walk(t.v4, [16]byte{}, 0, true)
	walk(t.v6, [16]byte{}, 0, false)
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// bit returns the i-th most significant bit of the address (0-indexed within
// the address family: 0..31 for IPv4, 0..127 for IPv6).
func bit(addr netip.Addr, i int) int {
	if addr.Is4() {
		a := addr.As4()
		return int(a[i/8]>>(7-i%8)) & 1
	}
	a := addr.As16()
	return int(a[i/8]>>(7-i%8)) & 1
}
