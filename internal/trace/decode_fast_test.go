package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"testing"
)

// assertDifferential decodes line with both the fast path and the
// encoding/json oracle and asserts they agree: same accept/reject, same
// Result, same AddrError field/value on address rejection. It returns the
// fast path's outcome for case-specific assertions.
func assertDifferential(t *testing.T, line string) (Result, error) {
	t.Helper()
	var want Result
	oracleErr := json.Unmarshal([]byte(line), &want)
	var got Result
	fastErr := DecodeResult([]byte(line), &got)

	if (oracleErr == nil) != (fastErr == nil) {
		t.Fatalf("accept/reject mismatch:\noracle: %v\nfast:   %v", oracleErr, fastErr)
	}
	if oracleErr != nil {
		var wantAddr, gotAddr *AddrError
		if errors.As(oracleErr, &wantAddr) != errors.As(fastErr, &gotAddr) {
			t.Fatalf("AddrError presence mismatch:\noracle: %v\nfast:   %v", oracleErr, fastErr)
		}
		if wantAddr != nil && (wantAddr.Field != gotAddr.Field || wantAddr.Value != gotAddr.Value) {
			t.Fatalf("AddrError detail mismatch:\noracle: %v\nfast:   %v", oracleErr, fastErr)
		}
		return got, fastErr
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("decoded results differ:\noracle: %#v\nfast:   %#v", want, got)
	}
	return got, nil
}

// TestDecodeFastArtifacts mirrors TestDecodeArtifacts for the fast path:
// every artifact line from the reference suite, plus fast-path-specific
// edge territory (escapes, surrogate pairs, exponent-form numbers,
// duplicate and out-of-order keys, truncations), decoded by both decoders
// and asserted equal.
func TestDecodeFastArtifacts(t *testing.T) {
	lines := []struct {
		name string
		line string
	}{
		{"timeout marker", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"x":"*"}]}]}`},
		{"nonstandard x marker", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"x":"?"}]}]}`},
		{"missing rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3"}]}]}`},
		{"late packet", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","late":2}]}]}`},
		{"err with rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"err":"N - network unreachable","from":"3.3.3.3","rtt":4.5}]}]}`},
		{"negative rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":-0.25}]}]}`},
		{"zero rtt kept", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":0}]}]}`},
		{"ttl and size ignored", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1.5,"ttl":63,"size":28}]}]}`},
		{"hop gap preserved", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1}]},{"hop":2,"result":[{"x":"*"},{"x":"*"},{"x":"*"}]},{"hop":5,"result":[{"from":"2.2.2.2","rtt":9}]}]}`},
		{"empty reply set", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[]}]}`},
		{"malformed src", `{"src_addr":"nope","dst_addr":"2.2.2.2","result":[]}`},
		{"malformed dst", `{"src_addr":"1.1.1.1","dst_addr":"512.0.0.1","result":[]}`},
		{"malformed from", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"bad","rtt":5}]}]}`},
		{"missing addrs", `{"msm_id":5001,"result":[]}`},
		{"null document", `null`},
		{"truncated line", `{"src_addr":"1.1.1.1","dst_addr":"2.2.`},
		{"wrong msm_id type", `{"msm_id":"not a number","src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`},
		{"rtt wrong type", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":"fast"}]}]}`},

		// Fast-path-specific edge territory.
		{"escaped from", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"\u0033.3.3\u002e3","rtt":1}]}]}`},
		{"escaped zone", `{"src_addr":"fe80::1%eth0","dst_addr":"2.2.2.2","result":[]}`},
		{"surrogate pair in zone", `{"src_addr":"fe80::1%😀","dst_addr":"2.2.2.2","result":[]}`},
		{"lone surrogate in zone", `{"src_addr":"fe80::1%\uD800x","dst_addr":"2.2.2.2","result":[]}`},
		{"exponent rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1.25e1}]}]}`},
		{"negative exponent rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":314E-2}]}]}`},
		{"subnormal rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":5e-324}]}]}`},
		{"long mantissa rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":0.30000000000000004}]}]}`},
		{"rtt out of range", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1e400}]}]}`},
		{"negative zero rtt", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":-0}]}]}`},
		{"out-of-order fields", `{"result":[{"result":[{"rtt":7,"from":"3.3.3.3"}],"hop":1}],"paris_id":2,"dst_addr":"2.2.2.2","src_addr":"1.1.1.1","timestamp":1448866800,"prb_id":1,"msm_id":5}`},
		{"duplicate scalar keys last-win", `{"src_addr":"9.9.9.9","src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":3,"hop":1,"result":[{"from":"4.4.4.4","from":"3.3.3.3","rtt":9,"rtt":1}]}]}`},
		{"duplicate hop arrays merge", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1}]}],"result":[{}]}`},
		{"duplicate reply arrays merge", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1}],"result":[{}]}]}`},
		{"case-folded keys", `{"SRC_ADDR":"1.1.1.1","Dst_Addr":"2.2.2.2","Result":[{"Hop":1,"RESULT":[{"From":"3.3.3.3","RTT":1.5}]}]}`},
		{"null fields are no-ops", `{"src_addr":"1.1.1.1","src_addr":null,"dst_addr":"2.2.2.2","paris_id":null,"result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1,"rtt":null}]}]}`},
		{"null hop and reply elements", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[null,{"hop":1,"result":[null,{"from":"3.3.3.3","rtt":1}]}]}`},
		{"null result array", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":null}`},
		{"unknown fields skipped", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","af":4,"proto":"ICMP","nested":{"deep":[1,{"x":[true,false,null]}]},"result":[{"hop":1,"icmpext":{"obj":[]},"result":[{"from":"3.3.3.3","rtt":1,"flags":[1,2]}]}]}`},
		{"min int64 timestamp", `{"timestamp":-9223372036854775808,"src_addr":"::","dst_addr":"0.0.0.0","result":[]}`},
		{"timestamp overflow", `{"timestamp":9223372036854775808,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`},
		{"float into int field", `{"msm_id":1.5,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`},
		{"exponent into int field", `{"msm_id":1e2,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`},
		{"leading zero number", `{"msm_id":01,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`},
		{"bare minus", `{"msm_id":-,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`},
		{"trailing garbage", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]} x`},
		{"trailing whitespace ok", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}` + "\n \t"},
		{"empty input", ``},
		{"whitespace only", ` `},
		{"top-level array", `[1,2]`},
		{"top-level string", `"hi"`},
		{"invalid escape", `{"src_addr":"\q","dst_addr":"2.2.2.2","result":[]}`},
		{"control char in string", "{\"src_addr\":\"\x01\",\"dst_addr\":\"2.2.2.2\",\"result\":[]}"},
		{"invalid utf8 in zone", "{\"src_addr\":\"fe80::1%\xff\",\"dst_addr\":\"2.2.2.2\",\"result\":[]}"},
		{"x null keeps earlier marker", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1,"x":"*","x":null}]}]}`},
		{"x emptied un-times-out", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1,"x":"*","x":""}]}]}`},
		{"err null still degrades", `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1,"err":null}]}]}`},

		// Regression: whitespace after the canonical `"result":` keys must
		// not derail the committed fast shapes — the probes skip it exactly
		// like the generic parser.
		{"space after top result", `{"msm_id":1,"prb_id":2,"timestamp":3,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","paris_id":4,"result": []}`},
		{"space after hop result", `{"msm_id":1,"prb_id":2,"timestamp":3,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","paris_id":4,"result":[{"hop":1,"result": [{"from":"3.3.3.3","rtt":1},{"x":"*"}]}]}`},
		{"newline after hop result", "{\"msm_id\":1,\"prb_id\":2,\"timestamp\":3,\"src_addr\":\"1.1.1.1\",\"dst_addr\":\"2.2.2.2\",\"paris_id\":4,\"result\":[{\"hop\":1,\"result\":\n\t[{\"x\":\"*\"}]}]}"},
	}
	// Regression: the fast-shape probes count the object braces they
	// consume, so the 10000-level nesting limit trips on the same inputs as
	// the oracle. The deep array sits 5 levels in (top object, hop array,
	// hop object, reply array, reply object): 9995 arrays touch the limit
	// exactly, 9996 exceed it.
	for _, n := range []int{9995, 9996} {
		lines = append(lines, struct {
			name string
			line string
		}{
			fmt.Sprintf("depth boundary %d", n),
			`{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1,"zz":` +
				strings.Repeat("[", n) + strings.Repeat("]", n) + `}]}]}`,
		})
	}
	for _, tc := range lines {
		t.Run(tc.name, func(t *testing.T) {
			assertDifferential(t, tc.line)
		})
	}
}

// TestDecodeFastValues pins a few absolute outcomes (beyond oracle
// agreement) so a bug shared by both decoders cannot hide.
func TestDecodeFastValues(t *testing.T) {
	r, err := assertDifferential(t, `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":314E-2}]}]}`)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	rep := r.Hops[0].Replies[0]
	if rep.From != netip.MustParseAddr("3.3.3.3") || rep.RTT != 3.14 || rep.Timeout {
		t.Fatalf("reply = %+v, want from 3.3.3.3 rtt 3.14", rep)
	}
	if r.Time.Unix() != 0 || r.Time.Location() != r.Time.UTC().Location() {
		t.Fatalf("time = %v, want Unix 0 UTC", r.Time)
	}

	r, err = assertDifferential(t, `{"src_addr":"fe80::1%😀","dst_addr":"2.2.2.2","result":[]}`)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Src.Zone() != "😀" {
		t.Fatalf("zone = %q, want the surrogate pair decoded", r.Src.Zone())
	}
}

// TestDecoderReuse pins scratch-state hygiene: decoding a rich line, then a
// minimal one, then an erroring one must not leak state between lines, and
// an error must leave dst untouched.
func TestDecoderReuse(t *testing.T) {
	var d Decoder
	var r Result
	rich := `{"msm_id":1,"prb_id":2,"timestamp":3,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","paris_id":4,"result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1},{"x":"*"}]},{"hop":2,"result":[{"from":"4.4.4.4","rtt":2}]}]}`
	if err := d.Decode([]byte(rich), &r); err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 2 || len(r.Hops[0].Replies) != 2 {
		t.Fatalf("rich line decoded wrong: %+v", r)
	}
	keep := r

	var r2 Result
	if err := d.Decode([]byte(`{"src_addr":"5.5.5.5","dst_addr":"6.6.6.6","result":[]}`), &r2); err != nil {
		t.Fatal(err)
	}
	if len(r2.Hops) != 0 || r2.MsmID != 0 {
		t.Fatalf("state leaked into second decode: %+v", r2)
	}

	if err := d.Decode([]byte(`{"src_addr":"bad"`), &r2); err == nil {
		t.Fatal("expected error")
	}
	if r2.Src != netip.MustParseAddr("5.5.5.5") {
		t.Fatalf("failed decode clobbered dst: %+v", r2)
	}

	if !reflect.DeepEqual(keep, r) {
		t.Fatal("earlier result aliases decoder scratch")
	}
}

// TestDecodeFastCorpusEquivalence replays the generator corpus fixture
// through both decoders line by line.
func TestDecodeFastCorpusEquivalence(t *testing.T) {
	var buf []byte
	for i := 0; i < 200; i++ {
		r := sampleResult()
		r.PrbID = i
		r.Hops[0].Replies[0].RTT = 0.25 + float64(i)/7
		line, err := AppendResult(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		buf = line
		assertDifferential(t, string(buf))
	}
}
