package trace

// Eisel–Lemire float conversion for the decoder's long-mantissa numbers.
//
// The Clinger fast case in toFloat/rttField handles mantissas of up to 15
// digits with one exact multiply or divide, but Atlas dumps written by
// strconv.AppendFloat(.., 'g', -1, 64) routinely carry 16–17 significant
// digits, and those used to fall back to strconv.ParseFloat — re-scanning
// digits the decoder had already accumulated and allocating a string for
// the call. eiselLemire64 converts the already-scanned (mantissa, exp10)
// pair directly: one 128-bit multiply against a truncated power of ten,
// with an explicit ok=false whenever the truncated product cannot prove
// the rounding direction. Ambiguous cases (and |exp10| outside the table)
// still go to ParseFloat, so the result is bit-identical to the oracle on
// every path; FuzzDecodeDifferential and TestEiselLemireDifferential pin
// that equivalence.

import (
	"math"
	"math/bits"
)

const (
	pow10wideMin = -48
	pow10wideMax = 48
)

// eiselLemire64 returns the correctly-rounded float64 value of
// ±man × 10^exp10, or ok=false when correct rounding cannot be decided
// from the 128-bit truncated power (caller falls back to ParseFloat).
// man must be the full untruncated decimal mantissa (≤ 19 digits).
func eiselLemire64(man uint64, exp10 int, neg bool) (f float64, ok bool) {
	if man == 0 {
		if neg {
			return math.Float64frombits(1 << 63), true // -0
		}
		return 0, true
	}
	if exp10 < pow10wideMin || exp10 > pow10wideMax {
		return 0, false
	}

	// Normalize the mantissa and derive the binary exponent of the result:
	// 10^exp10 = m × 2^((217706·exp10>>16)−127) with m ∈ [2^127, 2^128),
	// so w×m sits at exponent (217706·exp10>>16) + 64 − clz + bias, before
	// the final 0/1 normalization shift below.
	clz := bits.LeadingZeros64(man)
	w := man << uint(clz)
	const bias = 1023
	retExp2 := uint64((217706*exp10)>>16+64+bias) - uint64(clz)

	// One truncated 128×64→128 multiply usually suffices: the rounding
	// decision only becomes uncertain when the low 9 bits of the high word
	// are all ones and adding the (discarded) low-half contribution could
	// carry. In that case refine with the second table word, and give up
	// only if the refined product is still saturated.
	pw := &pow10wide[exp10-pow10wideMin]
	xHi, xLo := bits.Mul64(w, pw[1])
	if xHi&0x1FF == 0x1FF && xLo+w < w {
		yHi, yLo := bits.Mul64(w, pw[0])
		mHi, mLo := xHi, xLo+yHi
		if mLo < xLo {
			mHi++
		}
		if mHi&0x1FF == 0x1FF && mLo+1 == 0 && yLo+w < w {
			return 0, false
		}
		xHi, xLo = mHi, mLo
	}

	// The product's top bit is at position 127 or 126; shift down to a
	// 54-bit mantissa (53 + round bit) accordingly.
	msb := xHi >> 63
	mant := xHi >> (msb + 9)
	retExp2 -= 1 ^ msb

	// Round-to-even ambiguity: a discarded half exactly at the boundary
	// with a truncated product cannot be resolved here.
	if xLo == 0 && xHi&0x1FF == 0 && mant&3 == 1 {
		return 0, false
	}
	mant += mant & 1 // round half up…
	mant >>= 1       // …then drop the round bit (ties were filtered above)
	if mant>>53 > 0 {
		mant >>= 1
		retExp2++
	}

	// Subnormal or overflow: rare, let ParseFloat handle them.
	if retExp2-1 >= 0x7FF-1 {
		return 0, false
	}
	retBits := mant&0x000FFFFFFFFFFFFF | retExp2<<52
	if neg {
		retBits |= 1 << 63
	}
	return math.Float64frombits(retBits), true
}

// pow10wide[q-pow10wideMin] holds the normalized 128-bit truncation of 10^q
// as {lo, hi}: 10^q = m x 2^e with m in [2^127, 2^128), e = (217706*q>>16)-127.
var pow10wide = [...][2]uint64{
	{0x5560C018580D5D52, 0xBB127C53B17EC159}, // 1e-48
	{0xAAB8F01E6E10B4A6, 0xE9D71B689DDE71AF}, // 1e-47
	{0xCAB3961304CA70E8, 0x9226712162AB070D}, // 1e-46
	{0x3D607B97C5FD0D22, 0xB6B00D69BB55C8D1}, // 1e-45
	{0x8CB89A7DB77C506A, 0xE45C10C42A2B3B05}, // 1e-44
	{0x77F3608E92ADB242, 0x8EB98A7A9A5B04E3}, // 1e-43
	{0x55F038B237591ED3, 0xB267ED1940F1C61C}, // 1e-42
	{0x6B6C46DEC52F6688, 0xDF01E85F912E37A3}, // 1e-41
	{0x2323AC4B3B3DA015, 0x8B61313BBABCE2C6}, // 1e-40
	{0xABEC975E0A0D081A, 0xAE397D8AA96C1B77}, // 1e-39
	{0x96E7BD358C904A21, 0xD9C7DCED53C72255}, // 1e-38
	{0x7E50D64177DA2E54, 0x881CEA14545C7575}, // 1e-37
	{0xDDE50BD1D5D0B9E9, 0xAA242499697392D2}, // 1e-36
	{0x955E4EC64B44E864, 0xD4AD2DBFC3D07787}, // 1e-35
	{0xBD5AF13BEF0B113E, 0x84EC3C97DA624AB4}, // 1e-34
	{0xECB1AD8AEACDD58E, 0xA6274BBDD0FADD61}, // 1e-33
	{0x67DE18EDA5814AF2, 0xCFB11EAD453994BA}, // 1e-32
	{0x80EACF948770CED7, 0x81CEB32C4B43FCF4}, // 1e-31
	{0xA1258379A94D028D, 0xA2425FF75E14FC31}, // 1e-30
	{0x096EE45813A04330, 0xCAD2F7F5359A3B3E}, // 1e-29
	{0x8BCA9D6E188853FC, 0xFD87B5F28300CA0D}, // 1e-28
	{0x775EA264CF55347D, 0x9E74D1B791E07E48}, // 1e-27
	{0x95364AFE032A819D, 0xC612062576589DDA}, // 1e-26
	{0x3A83DDBD83F52204, 0xF79687AED3EEC551}, // 1e-25
	{0xC4926A9672793542, 0x9ABE14CD44753B52}, // 1e-24
	{0x75B7053C0F178293, 0xC16D9A0095928A27}, // 1e-23
	{0x5324C68B12DD6338, 0xF1C90080BAF72CB1}, // 1e-22
	{0xD3F6FC16EBCA5E03, 0x971DA05074DA7BEE}, // 1e-21
	{0x88F4BB1CA6BCF584, 0xBCE5086492111AEA}, // 1e-20
	{0x2B31E9E3D06C32E5, 0xEC1E4A7DB69561A5}, // 1e-19
	{0x3AFF322E62439FCF, 0x9392EE8E921D5D07}, // 1e-18
	{0x09BEFEB9FAD487C2, 0xB877AA3236A4B449}, // 1e-17
	{0x4C2EBE687989A9B3, 0xE69594BEC44DE15B}, // 1e-16
	{0x0F9D37014BF60A10, 0x901D7CF73AB0ACD9}, // 1e-15
	{0x538484C19EF38C94, 0xB424DC35095CD80F}, // 1e-14
	{0x2865A5F206B06FB9, 0xE12E13424BB40E13}, // 1e-13
	{0xF93F87B7442E45D3, 0x8CBCCC096F5088CB}, // 1e-12
	{0xF78F69A51539D748, 0xAFEBFF0BCB24AAFE}, // 1e-11
	{0xB573440E5A884D1B, 0xDBE6FECEBDEDD5BE}, // 1e-10
	{0x31680A88F8953030, 0x89705F4136B4A597}, // 1e-9
	{0xFDC20D2B36BA7C3D, 0xABCC77118461CEFC}, // 1e-8
	{0x3D32907604691B4C, 0xD6BF94D5E57A42BC}, // 1e-7
	{0xA63F9A49C2C1B10F, 0x8637BD05AF6C69B5}, // 1e-6
	{0x0FCF80DC33721D53, 0xA7C5AC471B478423}, // 1e-5
	{0xD3C36113404EA4A8, 0xD1B71758E219652B}, // 1e-4
	{0x645A1CAC083126E9, 0x83126E978D4FDF3B}, // 1e-3
	{0x3D70A3D70A3D70A3, 0xA3D70A3D70A3D70A}, // 1e-2
	{0xCCCCCCCCCCCCCCCC, 0xCCCCCCCCCCCCCCCC}, // 1e-1
	{0x0000000000000000, 0x8000000000000000}, // 1e0
	{0x0000000000000000, 0xA000000000000000}, // 1e1
	{0x0000000000000000, 0xC800000000000000}, // 1e2
	{0x0000000000000000, 0xFA00000000000000}, // 1e3
	{0x0000000000000000, 0x9C40000000000000}, // 1e4
	{0x0000000000000000, 0xC350000000000000}, // 1e5
	{0x0000000000000000, 0xF424000000000000}, // 1e6
	{0x0000000000000000, 0x9896800000000000}, // 1e7
	{0x0000000000000000, 0xBEBC200000000000}, // 1e8
	{0x0000000000000000, 0xEE6B280000000000}, // 1e9
	{0x0000000000000000, 0x9502F90000000000}, // 1e10
	{0x0000000000000000, 0xBA43B74000000000}, // 1e11
	{0x0000000000000000, 0xE8D4A51000000000}, // 1e12
	{0x0000000000000000, 0x9184E72A00000000}, // 1e13
	{0x0000000000000000, 0xB5E620F480000000}, // 1e14
	{0x0000000000000000, 0xE35FA931A0000000}, // 1e15
	{0x0000000000000000, 0x8E1BC9BF04000000}, // 1e16
	{0x0000000000000000, 0xB1A2BC2EC5000000}, // 1e17
	{0x0000000000000000, 0xDE0B6B3A76400000}, // 1e18
	{0x0000000000000000, 0x8AC7230489E80000}, // 1e19
	{0x0000000000000000, 0xAD78EBC5AC620000}, // 1e20
	{0x0000000000000000, 0xD8D726B7177A8000}, // 1e21
	{0x0000000000000000, 0x878678326EAC9000}, // 1e22
	{0x0000000000000000, 0xA968163F0A57B400}, // 1e23
	{0x0000000000000000, 0xD3C21BCECCEDA100}, // 1e24
	{0x0000000000000000, 0x84595161401484A0}, // 1e25
	{0x0000000000000000, 0xA56FA5B99019A5C8}, // 1e26
	{0x0000000000000000, 0xCECB8F27F4200F3A}, // 1e27
	{0x4000000000000000, 0x813F3978F8940984}, // 1e28
	{0x5000000000000000, 0xA18F07D736B90BE5}, // 1e29
	{0xA400000000000000, 0xC9F2C9CD04674EDE}, // 1e30
	{0x4D00000000000000, 0xFC6F7C4045812296}, // 1e31
	{0xF020000000000000, 0x9DC5ADA82B70B59D}, // 1e32
	{0x6C28000000000000, 0xC5371912364CE305}, // 1e33
	{0xC732000000000000, 0xF684DF56C3E01BC6}, // 1e34
	{0x3C7F400000000000, 0x9A130B963A6C115C}, // 1e35
	{0x4B9F100000000000, 0xC097CE7BC90715B3}, // 1e36
	{0x1E86D40000000000, 0xF0BDC21ABB48DB20}, // 1e37
	{0x1314448000000000, 0x96769950B50D88F4}, // 1e38
	{0x17D955A000000000, 0xBC143FA4E250EB31}, // 1e39
	{0x5DCFAB0800000000, 0xEB194F8E1AE525FD}, // 1e40
	{0x5AA1CAE500000000, 0x92EFD1B8D0CF37BE}, // 1e41
	{0xF14A3D9E40000000, 0xB7ABC627050305AD}, // 1e42
	{0x6D9CCD05D0000000, 0xE596B7B0C643C719}, // 1e43
	{0xE4820023A2000000, 0x8F7E32CE7BEA5C6F}, // 1e44
	{0xDDA2802C8A800000, 0xB35DBF821AE4F38B}, // 1e45
	{0xD50B2037AD200000, 0xE0352F62A19E306E}, // 1e46
	{0x4526F422CC340000, 0x8C213D9DA502DE45}, // 1e47
	{0x9670B12B7F410000, 0xAF298D050E4395D6}, // 1e48
}

// isEightDigits reports whether all eight bytes of a little-endian-loaded
// chunk are ASCII digits: the high nibble of every byte must be 3 and
// adding 6 must not carry into it (rules out ':'–'?').
func isEightDigits(chunk uint64) bool {
	return (chunk&0xF0F0F0F0F0F0F0F0)|
		(((chunk+0x0606060606060606)&0xF0F0F0F0F0F0F0F0)>>4) == 0x3333333333333333
}

// parseEightDigits evaluates eight ASCII digits (lowest-addressed byte =
// most significant digit) with three multiply-and-mask reductions: bytes →
// base-100 pairs → base-10⁴ quads → the full base-10⁸ value.
func parseEightDigits(chunk uint64) uint64 {
	chunk -= 0x3030303030303030
	pairs := (chunk * (1 + 10<<8) >> 8) & 0x00FF00FF00FF00FF
	quads := (pairs * (1 + 100<<16) >> 16) & 0x0000FFFF0000FFFF
	return quads * (1 + 10000<<32) >> 32
}
