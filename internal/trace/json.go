package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// Wire format, modeled on the RIPE Atlas traceroute result schema:
//
//	{"msm_id":5001,"prb_id":42,"timestamp":1448866800,
//	 "src_addr":"10.0.0.1","dst_addr":"193.0.14.129","paris_id":3,
//	 "result":[{"hop":1,"result":[{"from":"10.0.0.254","rtt":0.52},
//	                              {"x":"*"}]}]}
//
// Timestamps are Unix seconds (UTC), RTTs are milliseconds.

type wireReply struct {
	From string   `json:"from,omitempty"`
	RTT  *float64 `json:"rtt,omitempty"`
	X    string   `json:"x,omitempty"`

	// Fields present in real RIPE Atlas dumps, accepted for compatibility
	// and ignored on encode: TTL of the reply, packet size, late-arrival
	// count, and per-packet errors (e.g. "N - network unreachable").
	TTL  int             `json:"ttl,omitempty"`
	Size int             `json:"size,omitempty"`
	Late json.RawMessage `json:"late,omitempty"`
	Err  json.RawMessage `json:"err,omitempty"`
}

type wireHop struct {
	Hop     int         `json:"hop"`
	Replies []wireReply `json:"result"`
}

type wireResult struct {
	MsmID     int       `json:"msm_id"`
	PrbID     int       `json:"prb_id"`
	Timestamp int64     `json:"timestamp"`
	SrcAddr   string    `json:"src_addr"`
	DstAddr   string    `json:"dst_addr"`
	ParisID   int       `json:"paris_id"`
	Result    []wireHop `json:"result"`
}

// MarshalJSON encodes the result in the Atlas-like wire format.
func (r Result) MarshalJSON() ([]byte, error) {
	w := wireResult{
		MsmID:     r.MsmID,
		PrbID:     r.PrbID,
		Timestamp: r.Time.Unix(),
		SrcAddr:   r.Src.String(),
		DstAddr:   r.Dst.String(),
		ParisID:   r.ParisID,
		Result:    make([]wireHop, 0, len(r.Hops)),
	}
	for _, h := range r.Hops {
		wh := wireHop{Hop: h.Index, Replies: make([]wireReply, 0, len(h.Replies))}
		for _, rep := range h.Replies {
			if rep.Timeout {
				wh.Replies = append(wh.Replies, wireReply{X: "*"})
				continue
			}
			rtt := rep.RTT
			wh.Replies = append(wh.Replies, wireReply{From: rep.From.String(), RTT: &rtt})
		}
		w.Result = append(w.Result, wh)
	}
	return json.Marshal(w)
}

// AddrError reports a malformed address field in the wire format. It is
// returned (wrapped) by Result.UnmarshalJSON and matched with errors.As.
type AddrError struct {
	Field string // "src_addr", "dst_addr" or "from"
	Value string
	Err   error
}

// Error implements error.
func (e *AddrError) Error() string {
	return fmt.Sprintf("trace: bad %s %q: %v", e.Field, e.Value, e.Err)
}

// Unwrap exposes the underlying netip parse error.
func (e *AddrError) Unwrap() error { return e.Err }

// UnmarshalJSON decodes the Atlas-like wire format.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w wireResult
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("trace: decoding result: %w", err)
	}
	src, err := netip.ParseAddr(w.SrcAddr)
	if err != nil {
		return &AddrError{Field: "src_addr", Value: w.SrcAddr, Err: err}
	}
	dst, err := netip.ParseAddr(w.DstAddr)
	if err != nil {
		return &AddrError{Field: "dst_addr", Value: w.DstAddr, Err: err}
	}
	out := Result{
		MsmID:   w.MsmID,
		PrbID:   w.PrbID,
		Time:    time.Unix(w.Timestamp, 0).UTC(),
		Src:     src,
		Dst:     dst,
		ParisID: w.ParisID,
		Hops:    make([]Hop, 0, len(w.Result)),
	}
	for _, wh := range w.Result {
		h := Hop{Index: wh.Hop, Replies: make([]Reply, 0, len(wh.Replies))}
		for _, rep := range wh.Replies {
			if rep.X != "" {
				h.Replies = append(h.Replies, Reply{Timeout: true})
				continue
			}
			// Real Atlas dumps contain error entries ("err"), entries with
			// an address but no RTT (late packets, ICMP errors), and clock
			// artifacts like negative RTTs; none carries a usable delay
			// sample, so they degrade to timeouts rather than rejecting the
			// whole result.
			if len(rep.Err) > 0 || rep.From == "" || rep.RTT == nil || *rep.RTT < 0 {
				h.Replies = append(h.Replies, Reply{Timeout: true})
				continue
			}
			from, err := netip.ParseAddr(rep.From)
			if err != nil {
				return &AddrError{Field: "from", Value: rep.From, Err: err}
			}
			h.Replies = append(h.Replies, Reply{From: from, RTT: *rep.RTT})
		}
		out.Hops = append(out.Hops, h)
	}
	*r = out
	return nil
}

// ReadArray decodes results from a single JSON array — the envelope the
// RIPE Atlas REST API returns for measurement downloads, as opposed to the
// JSONL stream format. Invalid elements abort with an error identifying the
// element index.
func ReadArray(r io.Reader) ([]Result, error) {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("trace: reading array: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return nil, fmt.Errorf("trace: expected JSON array, got %v", tok)
	}
	var out []Result
	for dec.More() {
		var res Result
		if err := dec.Decode(&res); err != nil {
			return nil, fmt.Errorf("trace: array element %d: %w", len(out), err)
		}
		out = append(out, res)
	}
	if _, err := dec.Token(); err != nil {
		return nil, fmt.Errorf("trace: closing array: %w", err)
	}
	return out, nil
}

// Writer writes results as JSON Lines.
type Writer struct {
	bw  *bufio.Writer
	buf []byte // reused per-line encode buffer
}

// NewWriter returns a JSONL writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write appends one result as a single JSON line. It encodes through
// AppendResult into a buffer reused across calls — byte-identical to the
// json.Marshal encoding (TestWriterUsesFastEncoder) without its per-line
// allocations.
func (w *Writer) Write(r Result) error {
	b, err := AppendResult(w.buf[:0], r)
	if err != nil {
		return err
	}
	w.buf = append(b, '\n')
	_, err = w.bw.Write(w.buf)
	return err
}

// Flush flushes buffered output. Call it before closing the underlying
// writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader reads results from a JSONL stream. It is the straight-line
// reference decoder: internal/ingest's parallel pipeline is asserted
// equivalent to it (production callers use ingest for gzip, multi-file and
// worker support; this stays the independent implementation the
// equivalence tests compare against). It therefore decodes through
// encoding/json, not the fast path — keeping the two sides of the
// differential contract independent.
//
// Line accounting matches ingest's chunker exactly: blank lines and
// oversized-drained lines advance the reported line number, an oversized
// line (over MaxLineBytes) is drained to the next newline and reported as a
// line-numbered error wrapping ErrLineTooLong, and the stream stays
// readable past it.
type Reader struct {
	br   *bufio.Reader
	line int
	acc  []byte // continuation buffer for lines spanning reader buffers
	err  error  // sticky stream-level read error
}

// NewReader returns a JSONL reader over r. Lines up to MaxLineBytes are
// accepted.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 256*1024)}
}

// Read returns the next result, or io.EOF at end of stream. Line-scoped
// failures (malformed JSON, an oversized line) return an error mentioning
// the 1-based line number and leave the stream positioned at the next
// line, so callers may skip and continue; errors.Is(err, ErrLineTooLong)
// identifies drained oversized lines. Stream-level read errors are sticky.
func (r *Reader) Read() (Result, error) {
	if r.err != nil {
		return Result{}, r.err
	}
	r.acc = r.acc[:0]
	for {
		frag, rerr := r.br.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			r.acc = append(r.acc, frag...)
			if len(r.acc) <= MaxLineBytes {
				continue
			}
			// Oversized line: drain to the next newline so the stream stays
			// aligned, then report it with its line number.
			r.acc = r.acc[:0]
			for rerr == bufio.ErrBufferFull {
				frag, rerr = r.br.ReadSlice('\n')
			}
			if rerr != nil && rerr != io.EOF {
				r.err = rerr
			}
			r.line++
			return Result{}, fmt.Errorf("trace: line %d: %w", r.line, ErrLineTooLong)
		}
		if rerr != nil && rerr != io.EOF {
			r.err = rerr
			return Result{}, rerr
		}
		b := frag
		if rerr == nil {
			b = b[:len(b)-1] // strip the newline
		}
		if len(r.acc) > 0 {
			r.acc = append(r.acc, b...)
			b = r.acc
		}
		if n := len(b); n > 0 && b[n-1] == '\r' { // CRLF dumps
			b = b[:n-1]
		}
		if len(b) > 0 || rerr == nil {
			r.line++
			if len(b) > MaxLineBytes {
				// The final fragment pushed the line over the limit.
				return Result{}, fmt.Errorf("trace: line %d: %w", r.line, ErrLineTooLong)
			}
			if len(b) > 0 {
				var res Result
				if err := json.Unmarshal(b, &res); err != nil {
					return Result{}, fmt.Errorf("trace: line %d: %w", r.line, err)
				}
				return res, nil
			}
		}
		r.acc = r.acc[:0]
		if rerr == io.EOF {
			return Result{}, io.EOF
		}
	}
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Result, error) {
	var out []Result
	for {
		res, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
}
