package trace

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"unicode/utf8"
)

// AppendResult appends the Atlas wire encoding of r to dst and returns the
// extended slice. The output is byte-identical to Result.MarshalJSON
// (asserted by TestAppendResultGolden and the differential fuzzer): same
// field order, same float formatting, same string escaping — so streams
// written through the fast path stay comparable with golden files recorded
// through encoding/json. The only error is an RTT that JSON cannot
// represent (NaN or infinity), mirroring json.Marshal's rejection.
func AppendResult(dst []byte, r Result) ([]byte, error) {
	dst = append(dst, `{"msm_id":`...)
	dst = strconv.AppendInt(dst, int64(r.MsmID), 10)
	dst = append(dst, `,"prb_id":`...)
	dst = strconv.AppendInt(dst, int64(r.PrbID), 10)
	dst = append(dst, `,"timestamp":`...)
	dst = strconv.AppendInt(dst, r.Time.Unix(), 10)
	dst = append(dst, `,"src_addr":`...)
	dst = appendAddr(dst, r.Src)
	dst = append(dst, `,"dst_addr":`...)
	dst = appendAddr(dst, r.Dst)
	dst = append(dst, `,"paris_id":`...)
	dst = strconv.AppendInt(dst, int64(r.ParisID), 10)
	dst = append(dst, `,"result":[`...)
	for i, h := range r.Hops {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"hop":`...)
		dst = strconv.AppendInt(dst, int64(h.Index), 10)
		dst = append(dst, `,"result":[`...)
		for j, rep := range h.Replies {
			if j > 0 {
				dst = append(dst, ',')
			}
			if rep.Timeout {
				dst = append(dst, `{"x":"*"}`...)
				continue
			}
			dst = append(dst, `{"from":`...)
			dst = appendAddr(dst, rep.From)
			dst = append(dst, `,"rtt":`...)
			var err error
			dst, err = appendRTT(dst, rep.RTT)
			if err != nil {
				return dst, err
			}
			dst = append(dst, '}')
		}
		dst = append(dst, `]}`...)
	}
	dst = append(dst, `]}`...)
	return dst, nil
}

// appendAddr appends the quoted JSON encoding of an address. For valid
// zoneless addresses Addr.AppendTo emits only [0-9a-f.:], which never needs
// escaping; zones can carry arbitrary text, so they route through the full
// escaper. The zero Addr stringifies as "invalid IP" (Addr.String's
// behavior, which the reference encoder goes through).
func appendAddr(dst []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(dst, `"invalid IP"`...)
	}
	if a.Zone() == "" {
		dst = append(dst, '"')
		dst = a.AppendTo(dst)
		return append(dst, '"')
	}
	return appendJSONString(dst, a.AppendTo(make([]byte, 0, 64)))
}

// appendRTT appends a float exactly as encoding/json does: shortest
// representation, 'f' format except for magnitudes outside [1e-6, 1e21)
// which use 'e' with the exponent's leading zero trimmed.
func appendRTT(dst []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return dst, fmt.Errorf("trace: unsupported rtt value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends a quoted JSON string the way encoding/json's
// encoder does with HTML escaping on: <, >, & and controls escaped,
// \b \f \n \r \t shorthands, invalid UTF-8 replaced by a literal �
// escape, U+2028/U+2029 escaped for JavaScript embedding.
func appendJSONString(dst, src []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(src); {
		if b := src[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, src[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRune(src[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, src[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, src[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, src[start:]...)
	return append(dst, '"')
}
