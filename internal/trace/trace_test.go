package trace

import (
	"net/netip"
	"testing"
	"time"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func sampleResult() Result {
	return Result{
		MsmID:   5001,
		PrbID:   42,
		Time:    time.Date(2015, 11, 30, 7, 0, 0, 0, time.UTC),
		Src:     addr("10.0.0.1"),
		Dst:     addr("193.0.14.129"),
		ParisID: 3,
		Hops: []Hop{
			{Index: 1, Replies: []Reply{
				{From: addr("10.0.0.254"), RTT: 0.5},
				{From: addr("10.0.0.254"), RTT: 0.6},
				{From: addr("10.0.0.254"), RTT: 0.4},
			}},
			{Index: 2, Replies: []Reply{
				{From: addr("172.16.0.1"), RTT: 5.1},
				{Timeout: true},
				{From: addr("172.16.0.2"), RTT: 5.3},
			}},
			{Index: 3, Replies: []Reply{
				{From: addr("193.0.14.129"), RTT: 9.9},
				{From: addr("193.0.14.129"), RTT: 10.1},
				{From: addr("193.0.14.129"), RTT: 9.8},
			}},
		},
	}
}

func TestHopResponders(t *testing.T) {
	r := sampleResult()
	got := r.Hops[1].Responders()
	if len(got) != 2 || got[0] != addr("172.16.0.1") || got[1] != addr("172.16.0.2") {
		t.Errorf("Responders = %v", got)
	}
	if r.Hops[0].Unresponsive() {
		t.Error("hop 1 should be responsive")
	}
	dead := Hop{Index: 4, Replies: []Reply{{Timeout: true}, {Timeout: true}}}
	if !dead.Unresponsive() {
		t.Error("all-timeout hop should be unresponsive")
	}
	empty := Hop{Index: 5}
	if !empty.Unresponsive() {
		t.Error("empty hop should be unresponsive")
	}
}

func TestHopRTTs(t *testing.T) {
	r := sampleResult()
	rtts := r.Hops[0].RTTs(addr("10.0.0.254"))
	if len(rtts) != 3 {
		t.Fatalf("RTTs = %v", rtts)
	}
	if got := r.Hops[1].RTTs(addr("9.9.9.9")); len(got) != 0 {
		t.Errorf("RTTs of absent addr = %v", got)
	}
}

func TestValidate(t *testing.T) {
	r := sampleResult()
	if err := r.Validate(); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	bad := sampleResult()
	bad.Src = netip.Addr{}
	if bad.Validate() == nil {
		t.Error("invalid src accepted")
	}
	bad = sampleResult()
	bad.Hops = nil
	if bad.Validate() == nil {
		t.Error("no hops accepted")
	}
	bad = sampleResult()
	bad.Hops[2].Index = 2 // duplicate
	if bad.Validate() == nil {
		t.Error("non-ascending hops accepted")
	}
}

func TestReached(t *testing.T) {
	r := sampleResult()
	if !r.Reached() {
		t.Error("sample should reach its destination")
	}
	r.Hops = r.Hops[:2]
	if r.Reached() {
		t.Error("truncated traceroute should not be 'reached'")
	}
	if (Result{}).Reached() {
		t.Error("empty result should not be 'reached'")
	}
}

func TestLinkKey(t *testing.T) {
	k := LinkKey{Near: addr("1.1.1.1"), Far: addr("2.2.2.2")}
	if !k.Valid() {
		t.Error("valid key rejected")
	}
	if k.String() != "1.1.1.1>2.2.2.2" {
		t.Errorf("String = %q", k.String())
	}
	if k.Reverse() != (LinkKey{Near: addr("2.2.2.2"), Far: addr("1.1.1.1")}) {
		t.Error("Reverse wrong")
	}
	if (LinkKey{Near: addr("1.1.1.1"), Far: addr("1.1.1.1")}).Valid() {
		t.Error("self-link should be invalid")
	}
	if (LinkKey{}).Valid() {
		t.Error("zero key should be invalid")
	}
	// Comparable: usable as a map key with value semantics.
	m := map[LinkKey]int{k: 7}
	if m[LinkKey{Near: addr("1.1.1.1"), Far: addr("2.2.2.2")}] != 7 {
		t.Error("LinkKey map lookup failed")
	}
}

func TestAdjacentPairs(t *testing.T) {
	r := sampleResult()
	pairs := r.AdjacentPairs()
	if len(pairs) != 2 {
		t.Fatalf("AdjacentPairs = %d, want 2", len(pairs))
	}
	if pairs[0].Near.Index != 1 || pairs[0].Far.Index != 2 {
		t.Errorf("pair 0 = %d,%d", pairs[0].Near.Index, pairs[0].Far.Index)
	}
	// A gap (missing hop index) breaks adjacency.
	r.Hops[1].Index = 5
	r.Hops[2].Index = 6
	pairs = r.AdjacentPairs()
	if len(pairs) != 1 || pairs[0].Near.Index != 5 {
		t.Errorf("gapped AdjacentPairs = %+v", pairs)
	}
}
