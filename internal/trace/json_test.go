package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := sampleResult()
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Result
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.MsmID != orig.MsmID || got.PrbID != orig.PrbID || got.ParisID != orig.ParisID {
		t.Errorf("ids differ: %+v vs %+v", got, orig)
	}
	if !got.Time.Equal(orig.Time) {
		t.Errorf("time differs: %v vs %v", got.Time, orig.Time)
	}
	if got.Src != orig.Src || got.Dst != orig.Dst {
		t.Errorf("addrs differ")
	}
	if len(got.Hops) != len(orig.Hops) {
		t.Fatalf("hops differ: %d vs %d", len(got.Hops), len(orig.Hops))
	}
	for i := range got.Hops {
		if got.Hops[i].Index != orig.Hops[i].Index {
			t.Errorf("hop %d index differs", i)
		}
		if len(got.Hops[i].Replies) != len(orig.Hops[i].Replies) {
			t.Fatalf("hop %d replies differ", i)
		}
		for j := range got.Hops[i].Replies {
			g, o := got.Hops[i].Replies[j], orig.Hops[i].Replies[j]
			if g.Timeout != o.Timeout || g.From != o.From || g.RTT != o.RTT {
				t.Errorf("hop %d reply %d: %+v vs %+v", i, j, g, o)
			}
		}
	}
}

func TestJSONWireShape(t *testing.T) {
	b, err := json.Marshal(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"msm_id":5001`, `"prb_id":42`, `"src_addr":"10.0.0.1"`,
		`"dst_addr":"193.0.14.129"`, `"paris_id":3`, `"x":"*"`, `"hop":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire JSON missing %s in %s", want, s)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"src_addr":"nope","dst_addr":"1.1.1.1","result":[]}`,
		`{"src_addr":"1.1.1.1","dst_addr":"nope","result":[]}`,
		`{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"bad","rtt":5}]}]}`,
	}
	for i, c := range cases {
		var r Result
		if err := json.Unmarshal([]byte(c), &r); err == nil {
			t.Errorf("case %d: expected error for %s", i, c)
		}
	}
	// Atlas-compat leniency: a reply with an address but no RTT carries no
	// delay sample and degrades to a timeout instead of failing the result.
	var r Result
	lenient := `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3"}]}]}`
	if err := json.Unmarshal([]byte(lenient), &r); err != nil {
		t.Fatalf("missing-rtt reply should degrade, got error: %v", err)
	}
	if !r.Hops[0].Replies[0].Timeout {
		t.Error("missing-rtt reply should become a timeout")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 25
	for i := 0; i < n; i++ {
		r := sampleResult()
		r.PrbID = i
		if err := w.Write(r); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd := NewReader(&buf)
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != n {
		t.Fatalf("read %d results, want %d", len(got), n)
	}
	for i, r := range got {
		if r.PrbID != i {
			t.Errorf("result %d has PrbID %d", i, r.PrbID)
		}
	}
}

func TestReaderSkipsBlankLinesAndReportsLineNumbers(t *testing.T) {
	data := "\n\n" + mustLine(t) + "\n\nnot json\n"
	rd := NewReader(strings.NewReader(data))
	if _, err := rd.Read(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	_, err := rd.Read()
	if err == nil || err == io.EOF {
		t.Fatalf("expected decode error, got %v", err)
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error should mention line number: %v", err)
	}
}

func TestReaderEOF(t *testing.T) {
	rd := NewReader(strings.NewReader(""))
	if _, err := rd.Read(); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}

func mustLine(t *testing.T) string {
	t.Helper()
	b, err := json.Marshal(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestReaderExactLineNumbers(t *testing.T) {
	// Blank lines count toward line numbers: the bad line below is line 5.
	data := "\n\n" + mustLine(t) + "\n\nnot json\n" + mustLine(t) + "\n"
	rd := NewReader(strings.NewReader(data))
	if _, err := rd.Read(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	_, err := rd.Read()
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("bad line should be reported as line 5, got: %v", err)
	}
	// Line-scoped errors leave the stream readable.
	if _, err := rd.Read(); err != nil {
		t.Fatalf("read after bad line: %v", err)
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestReaderOversizedLineRecoverable(t *testing.T) {
	huge := strings.Repeat("x", MaxLineBytes+2)
	data := mustLine(t) + "\n" + huge + "\n" + mustLine(t) + "\n"
	rd := NewReader(strings.NewReader(data))
	if _, err := rd.Read(); err != nil {
		t.Fatalf("first read: %v", err)
	}
	_, err := rd.Read()
	if err == nil || !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("want ErrLineTooLong, got: %v", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("oversized line should be reported as line 2, got: %v", err)
	}
	// The drain left the stream aligned on the next line.
	if _, err := rd.Read(); err != nil {
		t.Fatalf("read after oversized line: %v", err)
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
