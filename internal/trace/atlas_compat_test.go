package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// Real RIPE Atlas dumps carry extra per-reply fields (ttl, size, late, err)
// and error entries without RTTs; decoding must tolerate all of them.
func TestDecodeRealAtlasShape(t *testing.T) {
	line := `{"msm_id":5001,"prb_id":42,"timestamp":1448866800,
	 "src_addr":"10.0.0.1","dst_addr":"193.0.14.129","paris_id":3,
	 "result":[
	   {"hop":1,"result":[
	     {"from":"10.0.0.254","rtt":0.52,"ttl":63,"size":28},
	     {"x":"*"},
	     {"from":"10.0.0.254","rtt":0.61,"ttl":63,"size":28,"late":2}]},
	   {"hop":2,"result":[
	     {"from":"172.16.0.1","err":"N"},
	     {"from":"172.16.0.1","rtt":5.2,"ttl":62},
	     {"from":"172.16.0.1"}]}
	 ]}`
	var r Result
	if err := json.Unmarshal([]byte(line), &r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("hops = %d", len(r.Hops))
	}
	// Hop 1: two usable replies + one timeout.
	h1 := r.Hops[0]
	if len(h1.RTTs(addr("10.0.0.254"))) != 2 {
		t.Errorf("hop1 usable RTTs = %v", h1.RTTs(addr("10.0.0.254")))
	}
	// Hop 2: err entry and missing-rtt entry degrade to timeouts; one
	// usable reply survives.
	h2 := r.Hops[1]
	if got := h2.RTTs(addr("172.16.0.1")); len(got) != 1 || got[0] != 5.2 {
		t.Errorf("hop2 usable RTTs = %v", got)
	}
	timeouts := 0
	for _, rep := range h2.Replies {
		if rep.Timeout {
			timeouts++
		}
	}
	if timeouts != 2 {
		t.Errorf("hop2 timeouts = %d, want 2 (err + missing rtt)", timeouts)
	}
}

func TestReadArrayEnvelope(t *testing.T) {
	one := mustLine(t)
	data := "[" + one + ",\n" + one + "]"
	rs, err := ReadArray(strings.NewReader(data))
	if err != nil {
		t.Fatalf("ReadArray: %v", err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].MsmID != 5001 {
		t.Errorf("MsmID = %d", rs[0].MsmID)
	}
}

func TestReadArrayErrors(t *testing.T) {
	if _, err := ReadArray(strings.NewReader(`{"not":"array"}`)); err == nil {
		t.Error("object accepted as array")
	}
	if _, err := ReadArray(strings.NewReader(`[{"src_addr":"bad"}]`)); err == nil {
		t.Error("bad element accepted")
	}
	if _, err := ReadArray(strings.NewReader(``)); err == nil {
		t.Error("empty input accepted")
	}
}
