package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
	"strconv"
	"sync"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// This file is the hand-rolled fast path for the Atlas NDJSON wire format:
// a single-pass byte scanner that dispatches on key bytes directly, with no
// intermediate wireResult and no reflection. Result.UnmarshalJSON (json.go)
// stays as the reference oracle — FuzzDecodeDifferential asserts that for
// every input the two decoders either produce the same Result or both
// reject — so the fast path must mirror encoding/json's observable
// behavior exactly: case-insensitive key matching, last-key-wins
// duplicates, null-is-a-no-op on int/string fields (but clears pointer and
// slice fields), strict number grammar, lone-surrogate and invalid-UTF-8
// sanitization, the 10000-level nesting limit, and structural skipping of
// unknown fields (ttl, size, late, err, future Atlas keys).

// MaxLineBytes bounds a single NDJSON line for Reader (and, via an alias,
// internal/ingest). An oversized line is drained so the stream stays
// aligned on the next newline, and reported as ErrLineTooLong.
const MaxLineBytes = 16 * 1024 * 1024

// ErrLineTooLong reports a line exceeding MaxLineBytes. Reader returns it
// wrapped with the line number; internal/ingest routes it through its
// per-line error policy.
var ErrLineTooLong = fmt.Errorf("line exceeds the %d MiB limit", MaxLineBytes/(1024*1024))

// maxDecodeDepth mirrors encoding/json's scanner nesting limit, so deeply
// nested unknown fields reject on both decoders.
const maxDecodeDepth = 10000

// maxAddrCache bounds the decoder's distinct-address memo; real dumps hold
// a few hundred thousand distinct addresses, hostile input stops inserting
// (but keeps decoding correctly) beyond the cap.
const maxAddrCache = 1 << 20

// DecodeError reports a syntax or shape violation the fast decoder found in
// a wire line, with the byte offset where scanning stopped.
type DecodeError struct {
	Offset int
	Msg    string
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: invalid wire result at offset %d: %s", e.Offset, e.Msg)
}

// strRef locates a decoded string: either a zero-copy window into the input
// line (clean strings) or a window into the decoder's unescape buffer
// (strings that carried escapes).
type strRef struct {
	off, n int32
	buf    bool
}

// pendAddr is a "from" address awaiting post-scan parsing. Addresses
// resolve only after the whole line scanned cleanly, mirroring
// encoding/json's validate-then-walk order (a syntax error anywhere in the
// line beats an address error earlier in it).
type pendAddr struct {
	reply int32
	ref   strRef
}

// hopRange is one hop under construction: its TTL and the window of its
// replies in the decoder's scratch reply buffer.
type hopRange struct {
	index      int
	start, end int32
}

// Decoder decodes Atlas wire lines with reusable scratch state. The zero
// value is ready to use; a Decoder is NOT safe for concurrent use — create
// one per goroutine (internal/ingest gives each decode worker its own).
//
// Steady state, a Decoder performs two allocations per decoded line: the
// Hops slice and one shared backing array for every hop's Replies.
// Addresses are parsed at most once per distinct text form — repeats hit a
// raw-bytes memo, netip.Addr values never round-trip through a string.
type Decoder struct {
	// ParseAddr, when non-nil, replaces netip.ParseAddr for address fields
	// (called once per distinct address text, behind the memo). It is the
	// interning-fusion hook: ident.Interner.AddrBytes both parses and
	// interns, so bytes go to AddrID with no intermediate Addr→string trip.
	ParseAddr func([]byte) (netip.Addr, error)

	data  []byte
	pos   int
	depth int

	hops    []hopRange
	replies []Reply
	pend    []pendAddr
	buf     []byte

	addrs map[string]netip.Addr
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// DecodeResult decodes one Atlas wire line into dst using a pooled Decoder.
// On error dst is left untouched. Callers decoding streams should hold
// their own Decoder and call its Decode method instead, which also keeps
// the address memo goroutine-local.
func DecodeResult(line []byte, dst *Result) error {
	d := decoderPool.Get().(*Decoder)
	err := d.Decode(line, dst)
	decoderPool.Put(d)
	return err
}

// emptyReplies backs every hop with no replies, so decoded hops always
// carry a non-nil Replies slice exactly like the reference decoder's.
var emptyReplies = make([]Reply, 0)

// topFields collects the scalar fields of the top-level result object
// during the scan; addresses stay as raw references until the line has
// scanned cleanly.
type topFields struct {
	msmID, prbID, parisID int
	timestamp             int64
	src, dst              strRef
}

// Decode decodes one Atlas wire line into dst. On error dst is untouched.
func (d *Decoder) Decode(line []byte, dst *Result) error {
	d.data, d.pos, d.depth = line, 0, 0
	d.hops = d.hops[:0]
	d.replies = d.replies[:0]
	d.pend = d.pend[:0]
	d.buf = d.buf[:0]
	if d.addrs == nil {
		d.addrs = make(map[string]netip.Addr)
	}

	var top topFields
	d.skipWS()
	c, ok := d.peek()
	switch {
	case !ok:
		return d.errf("unexpected end of input")
	case c == 'n':
		// A JSON null decodes to the zero result, which then fails address
		// resolution — exactly like the oracle.
		if err := d.literal("null"); err != nil {
			return err
		}
	case c == '{':
		handled, err := d.fastTop(&top)
		if !handled {
			err = d.parseTop(&top)
		}
		if err != nil {
			if err == errFallback {
				// A duplicate hop/reply array key: encoding/json re-decodes
				// the new array over the old one's backing elements,
				// merging structs field-by-field. No real Atlas line has
				// duplicate keys, so rather than carry wire-level merge
				// state through the hot path, hand the whole line to the
				// reference decoder — parity by construction.
				return dst.UnmarshalJSON(line)
			}
			return err
		}
	default:
		return d.errf("cannot decode %q into a result object", c)
	}
	d.skipWS()
	if d.pos != len(d.data) {
		return d.errf("invalid character after top-level value")
	}

	// The line is structurally sound; now resolve addresses in document
	// order (src, dst, then every kept reply), the oracle's error order.
	src, err := d.resolveAddr(top.src, "src_addr")
	if err != nil {
		return err
	}
	dstAddr, err := d.resolveAddr(top.dst, "dst_addr")
	if err != nil {
		return err
	}
	for _, p := range d.pend {
		a, err := d.resolveAddr(p.ref, "from")
		if err != nil {
			return err
		}
		d.replies[p.reply].From = a
	}

	// Materialize: one backing array shared by every hop's replies (the
	// second and last steady-state allocation besides the Hops slice).
	hops := make([]Hop, len(d.hops))
	var backing []Reply
	if len(d.replies) > 0 {
		backing = make([]Reply, len(d.replies))
		copy(backing, d.replies)
	}
	for i, hr := range d.hops {
		reps := emptyReplies
		if hr.end > hr.start {
			reps = backing[hr.start:hr.end:hr.end]
		}
		hops[i] = Hop{Index: hr.index, Replies: reps}
	}
	*dst = Result{
		MsmID:   top.msmID,
		PrbID:   top.prbID,
		Time:    time.Unix(top.timestamp, 0).UTC(),
		Src:     src,
		Dst:     dstAddr,
		ParisID: top.parisID,
		Hops:    hops,
	}
	return nil
}

// ── scanner primitives ──────────────────────────────────────────────────

func (d *Decoder) peek() (byte, bool) {
	if d.pos < len(d.data) {
		return d.data[d.pos], true
	}
	return 0, false
}

func (d *Decoder) skipWS() {
	// Machine-written dumps have no whitespace, so the common case is a
	// single compare: every JSON whitespace byte is <= ' '.
	if d.pos < len(d.data) && d.data[d.pos] > ' ' {
		return
	}
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func (d *Decoder) errf(format string, args ...any) error {
	return &DecodeError{Offset: d.pos, Msg: fmt.Sprintf(format, args...)}
}

// errFallback is an internal signal: the line uses a JSON shape whose
// encoding/json semantics the fast path deliberately does not model
// (duplicate array-valued keys merge element structs), so Decode reruns the
// line through the reference decoder.
var errFallback = fmt.Errorf("trace: fast path fallback")

func (d *Decoder) literal(s string) error {
	if len(d.data)-d.pos >= len(s) && string(d.data[d.pos:d.pos+len(s)]) == s {
		d.pos += len(s)
		return nil
	}
	return d.errf("invalid literal, expected %s", s)
}

// Canonical member literals, in the order our encoder (and real Atlas
// dumps) writes them; index i dispatches like *KeyIndex returning i.
var (
	topCanon   = [...]string{`"msm_id":`, `"prb_id":`, `"timestamp":`, `"src_addr":`, `"dst_addr":`, `"paris_id":`, `"result":`}
	hopCanon   = [...]string{`"hop":`, `"result":`}
	replyCanon = [...]string{`"from":`, `"rtt":`, `"x":`}
)

// match advances past lit when the input continues with exactly lit.
func (d *Decoder) match(lit string) bool {
	if len(d.data)-d.pos >= len(lit) && string(d.data[d.pos:d.pos+len(lit)]) == lit {
		d.pos += len(lit)
		return true
	}
	return false
}

func (d *Decoder) push() error {
	d.depth++
	if d.depth > maxDecodeDepth {
		return d.errf("exceeded max depth")
	}
	return nil
}

// endMember consumes the separator after an object member or array element:
// a comma (more members follow) or the closing delimiter.
func (d *Decoder) endMember(close byte) (more bool, err error) {
	d.skipWS()
	c, ok := d.peek()
	if !ok {
		return false, d.errf("unexpected end of input")
	}
	switch c {
	case ',':
		d.pos++
		return true, nil
	case close:
		d.pos++
		d.depth--
		return false, nil
	}
	return false, d.errf("invalid character %q after value", c)
}

// scanKey parses an object key and the following colon, leaving the cursor
// at the first byte of the value.
func (d *Decoder) scanKey() ([]byte, error) {
	d.skipWS()
	c, ok := d.peek()
	if !ok {
		return nil, d.errf("unexpected end of input")
	}
	if c != '"' {
		return nil, d.errf("invalid character %q looking for object key", c)
	}
	ref, err := d.scanString()
	if err != nil {
		return nil, err
	}
	d.skipWS()
	if c, ok := d.peek(); !ok || c != ':' {
		return nil, d.errf("invalid character after object key")
	}
	d.pos++
	d.skipWS()
	return d.refBytes(ref), nil
}

func (d *Decoder) refBytes(ref strRef) []byte {
	if ref.buf {
		return d.buf[ref.off : ref.off+ref.n]
	}
	return d.data[ref.off : ref.off+ref.n]
}

// ── strings ─────────────────────────────────────────────────────────────

// scanString parses a JSON string starting at the opening quote. Clean
// strings return a zero-copy window into the line; escape-bearing strings
// route through the slow-path unescape into the decoder's buffer.
func (d *Decoder) scanString() (strRef, error) {
	d.pos++ // opening quote
	data := d.data
	start := d.pos
	i := start
	// Word-at-a-time scan: skip 8 clean bytes per iteration, dropping to
	// the byte loop at the first quote, backslash or control character.
	for i+8 <= len(data) {
		w := binary.LittleEndian.Uint64(data[i:])
		if m := stringSpecials(w); m != 0 {
			i += bits.TrailingZeros64(m) >> 3
			break
		}
		i += 8
	}
	for ; i < len(data); i++ {
		c := data[i]
		if c == '"' {
			d.pos = i + 1
			return strRef{off: int32(start), n: int32(i - start)}, nil
		}
		if c == '\\' {
			return d.scanStringSlow(start, i)
		}
		if c < 0x20 {
			d.pos = i
			return strRef{}, d.errf("invalid control character in string")
		}
	}
	d.pos = len(data)
	return strRef{}, d.errf("unterminated string")
}

const (
	swarLSB = 0x0101010101010101
	swarMSB = 0x8080808080808080
)

// stringSpecials returns a mask with the high bit set in every byte of w
// that is a quote, a backslash, or a control character (< 0x20).
func stringSpecials(w uint64) uint64 {
	q := w ^ (swarLSB * '"')
	s := w ^ (swarLSB * '\\')
	return ((q - swarLSB) &^ q & swarMSB) |
		((s - swarLSB) &^ s & swarMSB) |
		((w - swarLSB*0x20) &^ w & swarMSB)
}

// scanStringSlow unescapes a string into the decoder's buffer, mirroring
// encoding/json: standard escapes, \uXXXX with UTF-16 surrogate pairing,
// lone surrogates become U+FFFD, raw invalid UTF-8 is copied through (the
// caller sanitizes strings whose decoded value matters).
func (d *Decoder) scanStringSlow(start, i int) (strRef, error) {
	data := d.data
	off := int32(len(d.buf))
	d.buf = append(d.buf, data[start:i]...)
	for i < len(data) {
		c := data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			return strRef{off: off, n: int32(len(d.buf)) - off, buf: true}, nil
		case c < 0x20:
			d.pos = i
			return strRef{}, d.errf("invalid control character in string")
		case c != '\\':
			d.buf = append(d.buf, c)
			i++
		default:
			i++
			if i >= len(data) {
				d.pos = i
				return strRef{}, d.errf("unterminated string escape")
			}
			switch data[i] {
			case '"', '\\', '/':
				d.buf = append(d.buf, data[i])
				i++
			case 'b':
				d.buf = append(d.buf, '\b')
				i++
			case 'f':
				d.buf = append(d.buf, '\f')
				i++
			case 'n':
				d.buf = append(d.buf, '\n')
				i++
			case 'r':
				d.buf = append(d.buf, '\r')
				i++
			case 't':
				d.buf = append(d.buf, '\t')
				i++
			case 'u':
				rr := getu4(data[i-1:])
				if rr < 0 {
					d.pos = i
					return strRef{}, d.errf("invalid \\u escape")
				}
				i += 5
				if utf16.IsSurrogate(rr) {
					rr1 := getu4(data[i:])
					if dec := utf16.DecodeRune(rr, rr1); dec != utf8.RuneError {
						i += 6
						d.buf = utf8.AppendRune(d.buf, dec)
						break
					}
					rr = utf8.RuneError
				}
				d.buf = utf8.AppendRune(d.buf, rr)
			default:
				d.pos = i
				return strRef{}, d.errf("invalid escape character %q", data[i])
			}
		}
	}
	d.pos = len(data)
	return strRef{}, d.errf("unterminated string")
}

// getu4 decodes \uXXXX from the start of s, returning -1 on malformation —
// the same contract as encoding/json's helper.
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range s[2:6] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// sanitize replaces invalid UTF-8 sequences with U+FFFD, exactly as
// encoding/json does while decoding strings.
func (d *Decoder) sanitize(b []byte) []byte {
	off := len(d.buf)
	for i := 0; i < len(b); {
		r, size := utf8.DecodeRune(b[i:])
		if r == utf8.RuneError && size <= 1 {
			d.buf = utf8.AppendRune(d.buf, utf8.RuneError)
			i++
			continue
		}
		d.buf = append(d.buf, b[i:i+size]...)
		i += size
	}
	return d.buf[off:]
}

// ── numbers ─────────────────────────────────────────────────────────────

type number struct {
	neg       bool
	mant      uint64
	sig       int
	exp10     int
	truncated bool
	hasFrac   bool
	hasExp    bool
	tok       []byte
}

// scanNumber validates JSON number grammar while accumulating a decimal
// mantissa and exponent for the fast conversion paths.
func (d *Decoder) scanNumber() (number, error) {
	var n number
	data := d.data
	start := d.pos
	i := d.pos
	if i < len(data) && data[i] == '-' {
		n.neg = true
		i++
	}
	if i >= len(data) || data[i] < '0' || data[i] > '9' {
		d.pos = i
		return n, d.errf("invalid number")
	}
	if data[i] == '0' {
		i++
	} else {
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			if n.sig < 19 {
				n.mant = n.mant*10 + uint64(data[i]-'0')
				n.sig++
			} else {
				n.truncated = true
				n.exp10++
			}
			i++
		}
	}
	if i < len(data) && data[i] == '.' {
		n.hasFrac = true
		i++
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			d.pos = i
			return n, d.errf("invalid number: no digits after decimal point")
		}
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			switch {
			case n.sig == 0 && data[i] == '0':
				n.exp10-- // leading zeros of a sub-1 number
			case n.sig < 19:
				n.mant = n.mant*10 + uint64(data[i]-'0')
				n.sig++
				n.exp10--
			default:
				n.truncated = true
			}
			i++
		}
	}
	if i < len(data) && (data[i] == 'e' || data[i] == 'E') {
		n.hasExp = true
		i++
		esign := 1
		if i < len(data) && (data[i] == '+' || data[i] == '-') {
			if data[i] == '-' {
				esign = -1
			}
			i++
		}
		if i >= len(data) || data[i] < '0' || data[i] > '9' {
			d.pos = i
			return n, d.errf("invalid number: no exponent digits")
		}
		e := 0
		for i < len(data) && data[i] >= '0' && data[i] <= '9' {
			if e < 1<<28 {
				e = e*10 + int(data[i]-'0')
			}
			i++
		}
		n.exp10 += esign * e
	}
	n.tok = data[start:i]
	d.pos = i
	return n, nil
}

// toInt converts per strconv.ParseInt semantics on the token: integer
// grammar only, int64 range — anything else is the oracle's reject.
func (n *number) toInt() (int64, bool) {
	if n.hasFrac || n.hasExp || n.truncated || n.sig > 19 {
		return 0, false
	}
	if n.neg {
		if n.mant > 1<<63 {
			return 0, false
		}
		return -int64(n.mant), true
	}
	if n.mant > 1<<63-1 {
		return 0, false
	}
	return int64(n.mant), true
}

// pow10tab holds the exactly-representable powers of ten.
var pow10tab = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10,
	1e11, 1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// toFloat converts with the classic exact fast path (mantissa ≤ 15 digits,
// |decimal exponent| ≤ 22: one multiply or divide is correctly rounded),
// then the Eisel–Lemire wide multiply for untruncated mantissas (16–19
// digits — full-precision 'g'-format floats land here); whatever neither
// can prove correctly rounded falls back to strconv.ParseFloat, the
// oracle's own conversion, so results are bit-identical on every path.
func (n *number) toFloat() (float64, bool) {
	if !n.truncated && n.sig <= 15 && n.exp10 >= -22 && n.exp10 <= 22 {
		f := float64(n.mant)
		switch {
		case n.exp10 > 0:
			f *= pow10tab[n.exp10]
		case n.exp10 < 0:
			f /= pow10tab[-n.exp10]
		}
		if n.neg {
			f = -f
		}
		return f, true
	}
	if !n.truncated {
		if f, ok := eiselLemire64(n.mant, n.exp10, n.neg); ok {
			return f, true
		}
	}
	f, err := strconv.ParseFloat(string(n.tok), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// ── field parsers ───────────────────────────────────────────────────────

// int64Field parses a strict-integer JSON number into p; null is a no-op
// (encoding/json leaves the previous value), anything else rejects.
func (d *Decoder) int64Field(p *int64, key string) error {
	// Fast path: a plain run of up to 19 digits with no fraction, exponent
	// or leading zero — every integer field a real dump carries.
	data := d.data
	i := d.pos
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	digs := i
	var mant uint64
	for i < len(data) && data[i] >= '0' && data[i] <= '9' && i-digs < 19 {
		mant = mant*10 + uint64(data[i]-'0')
		i++
	}
	if i > digs && (data[digs] != '0' || i == digs+1) &&
		(i == len(data) || (data[i] != '.' && data[i] != 'e' && data[i] != 'E' && (data[i] < '0' || data[i] > '9'))) {
		if neg {
			if mant > 1<<63 {
				return d.errf("number %s does not fit integer field %s", data[d.pos:i], key)
			}
			*p = -int64(mant)
		} else {
			if mant > 1<<63-1 {
				return d.errf("number %s does not fit integer field %s", data[d.pos:i], key)
			}
			*p = int64(mant)
		}
		d.pos = i
		return nil
	}

	c, ok := d.peek()
	if !ok {
		return d.errf("unexpected end of input")
	}
	if c == 'n' {
		return d.literal("null")
	}
	if c != '-' && (c < '0' || c > '9') {
		return d.errf("cannot decode %q into integer field %s", c, key)
	}
	n, err := d.scanNumber()
	if err != nil {
		return err
	}
	v, ok := n.toInt()
	if !ok {
		return d.errf("number %s does not fit integer field %s", n.tok, key)
	}
	*p = v
	return nil
}

func (d *Decoder) intField(p *int, key string) error {
	v := int64(*p)
	if err := d.int64Field(&v, key); err != nil {
		return err
	}
	*p = int(v)
	return nil
}

// strField parses a JSON string into ref; null is a no-op.
func (d *Decoder) strField(ref *strRef, key string) error {
	c, ok := d.peek()
	if !ok {
		return d.errf("unexpected end of input")
	}
	if c == 'n' {
		return d.literal("null")
	}
	if c != '"' {
		return d.errf("cannot decode %q into string field %s", c, key)
	}
	r, err := d.scanString()
	if err != nil {
		return err
	}
	*ref = r
	return nil
}

// resolveAddr turns a decoded string into a netip.Addr through the
// raw-bytes memo, sanitizing invalid UTF-8 first (the oracle decodes
// through a Go string, which replaces invalid sequences with U+FFFD).
func (d *Decoder) resolveAddr(ref strRef, field string) (netip.Addr, error) {
	b := d.refBytes(ref)
	if d.ParseAddr == nil {
		// Dotted-quad addresses (the vast majority of Atlas traffic) parse
		// inline for less than a map probe costs. Anything else — IPv6,
		// zones, malformed text — goes through the memo and full parser.
		// With an interning hook installed the memo stays authoritative, so
		// the hook sees every distinct address exactly once.
		if a, ok := parseV4(b); ok {
			return a, nil
		}
	}
	if !utf8.Valid(b) {
		b = d.sanitize(b)
	}
	if a, ok := d.addrs[string(b)]; ok {
		return a, nil
	}
	var a netip.Addr
	var err error
	if d.ParseAddr != nil {
		a, err = d.ParseAddr(b)
	} else {
		a, err = netip.ParseAddr(string(b))
	}
	if err != nil {
		return netip.Addr{}, &AddrError{Field: field, Value: string(b), Err: err}
	}
	if len(d.addrs) < maxAddrCache {
		d.addrs[string(b)] = a
	}
	return a, nil
}

// parseV4 parses a dotted-quad IPv4 address with netip.ParseAddr's exact
// grammar: four decimal octets, one to three digits, no leading zeros,
// each at most 255. ok=false means "not a clean dotted quad" — the caller
// falls back to the full parser, which produces the canonical error.
func parseV4(b []byte) (netip.Addr, bool) {
	var q [4]byte
	i := 0
	for f := 0; f < 4; f++ {
		if f > 0 {
			if i >= len(b) || b[i] != '.' {
				return netip.Addr{}, false
			}
			i++
		}
		st := i
		v := 0
		for i < len(b) && b[i] >= '0' && b[i] <= '9' && i-st < 3 {
			v = v*10 + int(b[i]-'0')
			i++
		}
		if i == st || (b[st] == '0' && i-st > 1) || v > 255 {
			return netip.Addr{}, false
		}
		q[f] = byte(v)
	}
	if i != len(b) {
		return netip.Addr{}, false
	}
	return netip.AddrFrom4(q), true
}

// ── objects ─────────────────────────────────────────────────────────────

var (
	topKeys   = [][]byte{[]byte("msm_id"), []byte("prb_id"), []byte("timestamp"), []byte("src_addr"), []byte("dst_addr"), []byte("paris_id"), []byte("result")}
	hopKeys   = [][]byte{[]byte("hop"), []byte("result")}
	replyKeys = [][]byte{[]byte("from"), []byte("rtt"), []byte("x"), []byte("ttl"), []byte("size"), []byte("late"), []byte("err")}
)

// keyIndex matches a decoded key against a known set the way encoding/json
// matches struct fields: exact first, then case-insensitively (Unicode
// simple folding). -1 means unknown — the value is skipped structurally.
// The key dispatchers switch on string(key) inline — the compiler elides
// that conversion, whereas passing it through a func value would force a
// heap copy per key. Exact match first (the hot path for machine-written
// dumps), then the case-insensitive scan encoding/json falls back to.
func foldIndex(key []byte, known [][]byte) int {
	for i, k := range known {
		if bytes.EqualFold(key, k) {
			return i
		}
	}
	return -1
}

func topKeyIndex(key []byte) int {
	switch string(key) {
	case "msm_id":
		return 0
	case "prb_id":
		return 1
	case "timestamp":
		return 2
	case "src_addr":
		return 3
	case "dst_addr":
		return 4
	case "paris_id":
		return 5
	case "result":
		return 6
	}
	return foldIndex(key, topKeys)
}

func hopKeyIndex(key []byte) int {
	switch string(key) {
	case "hop":
		return 0
	case "result":
		return 1
	}
	return foldIndex(key, hopKeys)
}

func replyKeyIndex(key []byte) int {
	switch string(key) {
	case "from":
		return 0
	case "rtt":
		return 1
	case "x":
		return 2
	case "ttl":
		return 3
	case "size":
		return 4
	case "late":
		return 5
	case "err":
		return 6
	}
	return foldIndex(key, replyKeys)
}

// fastTop attempts the full canonical top-level shape — every field in
// encoder order, fused into literal matches with no per-member dispatch.
// Once the hop array has begun parsing the shape is committed: failures
// from there are the same failures the generic parser would produce and
// propagate as handled=true. Earlier mismatches rewind (the scratch
// buffers are empty at entry, so resetting them is exact) and report
// handled=false, leaving parseTop to do the generic walk.
func (d *Decoder) fastTop(t *topFields) (handled bool, err error) {
	start := d.pos
	ok := d.match(`{"msm_id":`) &&
		d.intField(&t.msmID, "msm_id") == nil &&
		d.match(`,"prb_id":`) &&
		d.intField(&t.prbID, "prb_id") == nil &&
		d.match(`,"timestamp":`) &&
		d.int64Field(&t.timestamp, "timestamp") == nil &&
		d.match(`,"src_addr":`) &&
		d.strField(&t.src, "src_addr") == nil &&
		d.match(`,"dst_addr":`) &&
		d.strField(&t.dst, "dst_addr") == nil &&
		d.match(`,"paris_id":`) &&
		d.intField(&t.parisID, "paris_id") == nil &&
		d.match(`,"result":`)
	if !ok {
		d.pos = start
		return false, nil
	}
	// The consumed '{' counts one nesting level, exactly like parseTop's
	// push, so the depth limit trips on the same inputs as the oracle
	// (Decode calls fastTop at depth 0, so the limit cannot trip here).
	d.depth++
	d.skipWS()
	if err := d.parseHops(); err != nil {
		return true, err
	}
	if !d.match(`}`) {
		// Extra members after the hop array: rewind and drop everything
		// the array parse appended.
		d.hops = d.hops[:0]
		d.replies = d.replies[:0]
		d.pend = d.pend[:0]
		d.depth--
		d.pos = start
		return false, nil
	}
	d.depth--
	return true, nil
}

func (d *Decoder) parseTop(t *topFields) error {
	d.pos++ // '{'
	if err := d.push(); err != nil {
		return err
	}
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		d.depth--
		return nil
	}
	seenHops := false
	next := 0
	for {
		// Canonical-order probe: our own encoder (and real Atlas dumps)
		// write keys in a fixed order, so one memcmp of `"key":` replaces
		// the generic string scan plus dispatch. Any miss — reordered,
		// escaped or unknown keys — falls back to scanKey (which skips
		// whitespace itself, so the probe needs none on the hot path).
		ki := -1
		for j := next; j < len(topCanon); j++ {
			if d.match(topCanon[j]) {
				ki, next = j, j+1
				d.skipWS()
				break
			}
		}
		if ki < 0 {
			key, err := d.scanKey()
			if err != nil {
				return err
			}
			ki = topKeyIndex(key)
			if ki >= next {
				next = ki + 1
			}
		}
		var err error
		switch ki {
		case 0:
			err = d.intField(&t.msmID, "msm_id")
		case 1:
			err = d.intField(&t.prbID, "prb_id")
		case 2:
			err = d.int64Field(&t.timestamp, "timestamp")
		case 3:
			err = d.strField(&t.src, "src_addr")
		case 4:
			err = d.strField(&t.dst, "dst_addr")
		case 5:
			err = d.intField(&t.parisID, "paris_id")
		case 6:
			if seenHops {
				return errFallback
			}
			seenHops = true
			err = d.parseHops()
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
		more, err := d.endMember('}')
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

// parseHops parses the top-level "result" array (called at most once per
// line — duplicates take the fallback path).
// fastHop attempts the canonical hop shape {"hop":N,"result":[…]}. It
// reports handled=true once the shape is committed (the replies array has
// begun parsing): from then on any failure is the same failure the generic
// parser would produce, so it propagates rather than rewinds. Earlier
// mismatches rewind — including truncating reply scratch — and report
// handled=false.
func (d *Decoder) fastHop() (handled bool, err error) {
	start := d.pos
	if !d.match(`{"hop":`) {
		return false, nil
	}
	hr := hopRange{start: int32(len(d.replies))}
	pendLen := len(d.pend)
	if d.intField(&hr.index, "hop") != nil {
		d.pos = start
		return false, nil
	}
	if !d.match(`,"result":`) {
		d.pos = start
		return false, nil
	}
	// The consumed '{' counts one nesting level, mirroring parseHop's
	// push; at the limit, rewind so the generic path reports the oracle's
	// depth error.
	if d.depth >= maxDecodeDepth {
		d.pos = start
		return false, nil
	}
	d.depth++
	d.skipWS()
	if err := d.parseReplies(&hr); err != nil {
		return true, err
	}
	if !d.match(`}`) {
		// Extra or reordered members after the replies array: rewind,
		// dropping whatever parseReplies appended to the scratch buffers.
		d.replies = d.replies[:hr.start]
		d.pend = d.pend[:pendLen]
		d.depth--
		d.pos = start
		return false, nil
	}
	d.depth--
	hr.end = int32(len(d.replies))
	d.hops = append(d.hops, hr)
	return true, nil
}

func (d *Decoder) parseHops() error {
	c, ok := d.peek()
	if !ok {
		return d.errf("unexpected end of input")
	}
	if c == 'n' {
		return d.literal("null")
	}
	if c != '[' {
		return d.errf("cannot decode %q into the hop array", c)
	}
	d.pos++
	if err := d.push(); err != nil {
		return err
	}
	d.skipWS()
	if c, ok := d.peek(); ok && c == ']' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		// Whole-shape probe for the canonical hop form
		// {"hop":N,"result":[…]}; a miss rewinds to the generic parser.
		if ok, err := d.fastHop(); ok {
			if err != nil {
				return err
			}
			more, err := d.endMember(']')
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
			continue
		}
		d.skipWS()
		c, ok := d.peek()
		if !ok {
			return d.errf("unexpected end of input")
		}
		var err error
		switch c {
		case '{':
			err = d.parseHop()
		case 'n':
			// null hop element: a zero hop with no replies.
			if err = d.literal("null"); err == nil {
				end := int32(len(d.replies))
				d.hops = append(d.hops, hopRange{start: end, end: end})
			}
		default:
			err = d.errf("cannot decode %q into a hop object", c)
		}
		if err != nil {
			return err
		}
		more, err := d.endMember(']')
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

func (d *Decoder) parseHop() error {
	d.pos++ // '{'
	if err := d.push(); err != nil {
		return err
	}
	hr := hopRange{start: int32(len(d.replies))}
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		d.depth--
		hr.end = int32(len(d.replies))
		d.hops = append(d.hops, hr)
		return nil
	}
	seenReplies := false
	next := 0
	for {
		ki := -1
		for j := next; j < len(hopCanon); j++ {
			if d.match(hopCanon[j]) {
				ki, next = j, j+1
				d.skipWS()
				break
			}
		}
		if ki < 0 {
			key, err := d.scanKey()
			if err != nil {
				return err
			}
			ki = hopKeyIndex(key)
			if ki >= next {
				next = ki + 1
			}
		}
		var err error
		switch ki {
		case 0:
			err = d.intField(&hr.index, "hop")
		case 1:
			if seenReplies {
				return errFallback
			}
			seenReplies = true
			err = d.parseReplies(&hr)
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
		more, err := d.endMember('}')
		if err != nil {
			return err
		}
		if !more {
			hr.end = int32(len(d.replies))
			d.hops = append(d.hops, hr)
			return nil
		}
	}
}

// parseReplies parses one hop's "result" array (parseHop guarantees it is
// called at most once per hop — duplicates take the fallback path).
// fastReply attempts the two canonical reply shapes — {"from":"…","rtt":N}
// and {"x":"*"} — consuming the whole object on success. On any mismatch it
// rewinds and reports false, leaving the generic member loop to parse (or
// reject) the element with identical semantics.
func (d *Decoder) fastReply() bool {
	// The reply object is one nesting level; its canonical shapes hold no
	// nested values, so the level is only observable at the depth limit —
	// rewind there and let the generic path report the oracle's error.
	if d.depth >= maxDecodeDepth {
		return false
	}
	start := d.pos
	if d.match(`{"x":"*"}`) {
		d.replies = append(d.replies, Reply{Timeout: true})
		return true
	}
	if !d.match(`{"from":"`) {
		return false
	}
	d.pos-- // scanString expects the cursor on the opening quote
	from, err := d.scanString()
	if err != nil {
		d.pos = start
		return false
	}
	if !d.match(`,"rtt":`) {
		d.pos = start
		return false
	}
	var rtt float64
	var hasRTT bool
	if d.rttField(&rtt, &hasRTT) != nil {
		d.pos = start
		return false
	}
	if !d.match(`}`) {
		d.pos = start
		return false
	}
	// parseReply's finish() semantics with no x, err or extra members seen.
	if from.n == 0 || !hasRTT || rtt < 0 {
		d.replies = append(d.replies, Reply{Timeout: true})
		return true
	}
	d.pend = append(d.pend, pendAddr{reply: int32(len(d.replies)), ref: from})
	d.replies = append(d.replies, Reply{RTT: rtt})
	return true
}

func (d *Decoder) parseReplies(hr *hopRange) error {
	c, ok := d.peek()
	if !ok {
		return d.errf("unexpected end of input")
	}
	if c == 'n' {
		return d.literal("null")
	}
	if c != '[' {
		return d.errf("cannot decode %q into a reply array", c)
	}
	d.pos++
	if err := d.push(); err != nil {
		return err
	}
	d.skipWS()
	if c, ok := d.peek(); ok && c == ']' {
		d.pos++
		d.depth--
		return nil
	}
	for {
		// Whole-shape probes for the two canonical reply forms. A matched
		// shape skips the generic member loop entirely; any miss rewinds
		// and re-parses generically, so semantics are unchanged.
		if d.fastReply() {
			more, err := d.endMember(']')
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
			continue
		}
		d.skipWS()
		c, ok := d.peek()
		if !ok {
			return d.errf("unexpected end of input")
		}
		var err error
		switch c {
		case '{':
			err = d.parseReply()
		case 'n':
			// null reply element: the zero reply, which degrades to a
			// timeout (no address, no RTT).
			if err = d.literal("null"); err == nil {
				d.replies = append(d.replies, Reply{Timeout: true})
			}
		default:
			err = d.errf("cannot decode %q into a reply object", c)
		}
		if err != nil {
			return err
		}
		more, err := d.endMember(']')
		if err != nil {
			return err
		}
		if !more {
			return nil
		}
	}
}

func (d *Decoder) parseReply() error {
	d.pos++ // '{'
	if err := d.push(); err != nil {
		return err
	}
	var (
		from     strRef
		rtt      float64
		hasRTT   bool
		xPresent bool
		errSeen  bool
		scratch  int
	)
	finish := func() {
		// The per-reply leniency rules of the reference decoder: a
		// timeout marker, an error entry, a missing address, a missing
		// RTT (late packets, ICMP errors) or a negative-RTT clock
		// artifact all degrade to a timeout rather than rejecting.
		if xPresent || errSeen || from.n == 0 || !hasRTT || rtt < 0 {
			d.replies = append(d.replies, Reply{Timeout: true})
			return
		}
		d.pend = append(d.pend, pendAddr{reply: int32(len(d.replies)), ref: from})
		d.replies = append(d.replies, Reply{RTT: rtt})
	}
	d.skipWS()
	if c, ok := d.peek(); ok && c == '}' {
		d.pos++
		d.depth--
		finish()
		return nil
	}
	next := 0
	for {
		ki := -1
		for j := next; j < len(replyCanon); j++ {
			if d.match(replyCanon[j]) {
				ki, next = j, j+1
				d.skipWS()
				break
			}
		}
		if ki < 0 {
			key, err := d.scanKey()
			if err != nil {
				return err
			}
			ki = replyKeyIndex(key)
			if ki >= next {
				next = ki + 1
			}
		}
		var err error
		switch ki {
		case 0:
			err = d.strField(&from, "from")
		case 1:
			err = d.rttField(&rtt, &hasRTT)
		case 2:
			var x strRef
			x.n = -1 // sentinel: distinguish "null no-op" from "set to empty"
			if err = d.strField(&x, "x"); err == nil && x.n >= 0 {
				xPresent = x.n > 0
			}
		case 3:
			err = d.intField(&scratch, "ttl")
		case 4:
			err = d.intField(&scratch, "size")
		case 5:
			err = d.skipValue()
		case 6:
			// Any err value — even null — makes the raw message non-empty,
			// so the reply degrades to a timeout.
			errSeen = true
			err = d.skipValue()
		default:
			err = d.skipValue()
		}
		if err != nil {
			return err
		}
		more, err := d.endMember('}')
		if err != nil {
			return err
		}
		if !more {
			finish()
			return nil
		}
	}
}

// rttField parses the rtt value: a JSON number per ParseFloat, or null,
// which clears the field (the oracle's *float64 becomes nil).
func (d *Decoder) rttField(rtt *float64, has *bool) error {
	// Fast path: digits['.'digits] with at most 19 digits and no exponent
	// — every rtt a real dump carries. Up to 15 digits take one
	// multiply-free accumulate plus one exact pow10 divide (the Clinger
	// fast case); 16–19 digits — full-precision 'g'-formatted floats —
	// take the Eisel–Lemire wide multiply. Both round identically to
	// ParseFloat; anything either cannot prove drops to the slow path.
	data := d.data
	i := d.pos
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	ds := i
	var mant uint64
	nd := 0
	for i < len(data) && data[i] >= '0' && data[i] <= '9' && nd < 19 {
		mant = mant*10 + uint64(data[i]-'0')
		nd++
		i++
	}
	if intDigs := i - ds; intDigs > 0 && (data[ds] != '0' || intDigs == 1) {
		exp := 0
		if i < len(data) && data[i] == '.' {
			fs := i + 1
			i = fs
			// Full-precision RTTs carry ~14 fraction digits: take them
			// eight at a time (one SWAR validate + evaluate per chunk)
			// before the byte-wise tail.
			for i+8 <= len(data) && nd+8 <= 19 && isEightDigits(binary.LittleEndian.Uint64(data[i:])) {
				mant = mant*100000000 + parseEightDigits(binary.LittleEndian.Uint64(data[i:]))
				nd += 8
				exp -= 8
				i += 8
			}
			for i < len(data) && data[i] >= '0' && data[i] <= '9' && nd < 19 {
				mant = mant*10 + uint64(data[i]-'0')
				nd++
				exp--
				i++
			}
			if i == fs {
				i = fs - 1 // no fraction digits (or none within budget): slow path
			}
		}
		if i > ds && (i == len(data) ||
			(data[i] != 'e' && data[i] != 'E' && data[i] != '.' && (data[i] < '0' || data[i] > '9'))) {
			if nd <= 15 {
				f := float64(mant)
				if exp < 0 {
					f /= pow10tab[-exp]
				}
				if neg {
					f = -f
				}
				*rtt = f
				*has = true
				d.pos = i
				return nil
			}
			if f, ok := eiselLemire64(mant, exp, neg); ok {
				*rtt = f
				*has = true
				d.pos = i
				return nil
			}
			// Ambiguous rounding: d.pos untouched, rescan below.
		}
	}

	c, ok := d.peek()
	if !ok {
		return d.errf("unexpected end of input")
	}
	if c == 'n' {
		if err := d.literal("null"); err != nil {
			return err
		}
		*has = false
		return nil
	}
	if c != '-' && (c < '0' || c > '9') {
		return d.errf("cannot decode %q into the rtt field", c)
	}
	n, err := d.scanNumber()
	if err != nil {
		return err
	}
	f, ok2 := n.toFloat()
	if !ok2 {
		return d.errf("number %s out of float range", n.tok)
	}
	*rtt, *has = f, true
	return nil
}

// ── structural skipping ─────────────────────────────────────────────────

// skipValue validates and discards one JSON value of any shape — how
// unknown fields (ttl-adjacent compat keys, future Atlas extensions) pass
// through without building anything.
func (d *Decoder) skipValue() error {
	d.skipWS()
	c, ok := d.peek()
	if !ok {
		return d.errf("unexpected end of input")
	}
	switch c {
	case '"':
		_, err := d.scanString()
		return err
	case 't':
		return d.literal("true")
	case 'f':
		return d.literal("false")
	case 'n':
		return d.literal("null")
	case '{':
		d.pos++
		if err := d.push(); err != nil {
			return err
		}
		d.skipWS()
		if c, ok := d.peek(); ok && c == '}' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			if _, err := d.scanKey(); err != nil {
				return err
			}
			if err := d.skipValue(); err != nil {
				return err
			}
			more, err := d.endMember('}')
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	case '[':
		d.pos++
		if err := d.push(); err != nil {
			return err
		}
		d.skipWS()
		if c, ok := d.peek(); ok && c == ']' {
			d.pos++
			d.depth--
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			more, err := d.endMember(']')
			if err != nil {
				return err
			}
			if !more {
				return nil
			}
		}
	default:
		if c == '-' || ('0' <= c && c <= '9') {
			_, err := d.scanNumber()
			return err
		}
		return d.errf("invalid character %q looking for a value", c)
	}
}
