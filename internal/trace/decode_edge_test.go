package trace

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestDecodeArtifacts is the table-driven artifact suite: every measurement
// artifact class observed in real Atlas dumps (cf. Viger et al. on
// traceroute measurement artifacts) either decodes to the documented value
// or fails with a typed error — never silently wrong, never a panic.
func TestDecodeArtifacts(t *testing.T) {
	type replyWant struct {
		timeout bool
		from    string
		rtt     float64
	}
	cases := []struct {
		name  string
		line  string // full wire line
		hops  int    // expected hop count (when no error)
		reply *replyWant
		// error expectations (mutually exclusive with the above)
		wantErr   bool
		addrField string // non-empty: expect *AddrError with this Field
		syntaxErr bool   // expect *json.SyntaxError
		typeErr   bool   // expect *json.UnmarshalTypeError
	}{
		{
			name:  "timeout marker",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"x":"*"}]}]}`,
			hops:  1,
			reply: &replyWant{timeout: true},
		},
		{
			name:  "nonstandard x marker still a timeout",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"x":"?"}]}]}`,
			hops:  1,
			reply: &replyWant{timeout: true},
		},
		{
			name:  "missing rtt degrades to timeout",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3"}]}]}`,
			hops:  1,
			reply: &replyWant{timeout: true},
		},
		{
			name:  "late packet degrades to timeout",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","late":2}]}]}`,
			hops:  1,
			reply: &replyWant{timeout: true},
		},
		{
			name:  "err field degrades to timeout even with rtt",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"err":"N - network unreachable","from":"3.3.3.3","rtt":4.5}]}]}`,
			hops:  1,
			reply: &replyWant{timeout: true},
		},
		{
			name:  "negative rtt clock artifact degrades to timeout",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":-0.25}]}]}`,
			hops:  1,
			reply: &replyWant{timeout: true},
		},
		{
			name:  "zero rtt is kept",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":0}]}]}`,
			hops:  1,
			reply: &replyWant{from: "3.3.3.3", rtt: 0},
		},
		{
			name:  "ttl and size compat fields ignored",
			line:  `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1.5,"ttl":63,"size":28}]}]}`,
			hops:  1,
			reply: &replyWant{from: "3.3.3.3", rtt: 1.5},
		},
		{
			name: "unresponsive hop gap preserved",
			line: `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[` +
				`{"hop":1,"result":[{"from":"3.3.3.3","rtt":1}]},` +
				`{"hop":2,"result":[{"x":"*"},{"x":"*"},{"x":"*"}]},` +
				`{"hop":5,"result":[{"from":"2.2.2.2","rtt":9}]}]}`,
			hops: 3,
		},
		{
			name: "empty reply set decodes to empty unresponsive hop",
			line: `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[]}]}`,
			hops: 1,
		},
		{
			name:      "malformed source address",
			line:      `{"src_addr":"nope","dst_addr":"2.2.2.2","result":[]}`,
			wantErr:   true,
			addrField: "src_addr",
		},
		{
			name:      "malformed destination address",
			line:      `{"src_addr":"1.1.1.1","dst_addr":"512.0.0.1","result":[]}`,
			wantErr:   true,
			addrField: "dst_addr",
		},
		{
			name:      "malformed reply address",
			line:      `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"bad","rtt":5}]}]}`,
			wantErr:   true,
			addrField: "from",
		},
		{
			name:      "missing addresses",
			line:      `{"msm_id":5001,"result":[]}`,
			wantErr:   true,
			addrField: "src_addr",
		},
		{
			name:      "null document",
			line:      `null`,
			wantErr:   true,
			addrField: "src_addr",
		},
		{
			name:      "truncated line",
			line:      `{"src_addr":"1.1.1.1","dst_addr":"2.2.`,
			wantErr:   true,
			syntaxErr: true,
		},
		{
			name:    "wrong field type",
			line:    `{"msm_id":"not a number","src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`,
			wantErr: true,
			typeErr: true,
		},
		{
			name:    "rtt wrong type",
			line:    `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":"fast"}]}]}`,
			wantErr: true,
			typeErr: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Result
			err := json.Unmarshal([]byte(tc.line), &r)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("decoded without error: %+v", r)
				}
				if tc.addrField != "" {
					var ae *AddrError
					if !errors.As(err, &ae) {
						t.Fatalf("err = %v, want *AddrError", err)
					}
					if ae.Field != tc.addrField {
						t.Errorf("AddrError.Field = %q, want %q", ae.Field, tc.addrField)
					}
				}
				if tc.syntaxErr {
					var se *json.SyntaxError
					if !errors.As(err, &se) {
						t.Errorf("err = %v, want *json.SyntaxError", err)
					}
				}
				if tc.typeErr {
					var te *json.UnmarshalTypeError
					if !errors.As(err, &te) {
						t.Errorf("err = %v, want *json.UnmarshalTypeError", err)
					}
				}
				return
			}
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(r.Hops) != tc.hops {
				t.Fatalf("hops = %d, want %d", len(r.Hops), tc.hops)
			}
			if tc.reply != nil {
				if len(r.Hops[0].Replies) != 1 {
					t.Fatalf("replies = %d, want 1", len(r.Hops[0].Replies))
				}
				rep := r.Hops[0].Replies[0]
				if rep.Timeout != tc.reply.timeout {
					t.Errorf("Timeout = %v, want %v", rep.Timeout, tc.reply.timeout)
				}
				if tc.reply.timeout {
					if rep.From.IsValid() || rep.RTT != 0 {
						t.Errorf("timeout reply carries data: %+v", rep)
					}
				} else {
					if rep.From.String() != tc.reply.from || rep.RTT != tc.reply.rtt {
						t.Errorf("reply = %+v, want from=%s rtt=%g", rep, tc.reply.from, tc.reply.rtt)
					}
				}
			}
		})
	}
}

// TestDecodeArtifactGapAdjacency pins the analysis-plane consequence of an
// unresponsive-hop gap: non-consecutive hop indices break link adjacency,
// exactly as an unresponsive router hides its links from the delay method.
func TestDecodeArtifactGapAdjacency(t *testing.T) {
	line := `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[` +
		`{"hop":1,"result":[{"from":"3.3.3.1","rtt":1}]},` +
		`{"hop":2,"result":[{"from":"3.3.3.2","rtt":2}]},` +
		`{"hop":4,"result":[{"from":"3.3.3.4","rtt":4}]}]}`
	var r Result
	if err := json.Unmarshal([]byte(line), &r); err != nil {
		t.Fatal(err)
	}
	pairs := r.AdjacentPairs()
	if len(pairs) != 1 {
		t.Fatalf("adjacent pairs = %d, want 1 (the 1→2 pair; 2→4 is a gap)", len(pairs))
	}
	if pairs[0].Near.Index != 1 || pairs[0].Far.Index != 2 {
		t.Errorf("pair = %d→%d, want 1→2", pairs[0].Near.Index, pairs[0].Far.Index)
	}
}
