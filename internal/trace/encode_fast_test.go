package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// corpusLines extracts the wire lines from the checked-in fuzz corpus
// (go test fuzz v1 format: one quoted []byte per file).
func corpusLines(t *testing.T) [][]byte {
	t.Helper()
	files, err := filepath.Glob("testdata/fuzz/FuzzDecodeResult/atlasgen_*")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	var out [][]byte
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, ln := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(ln, "[]byte(") {
				continue
			}
			q := strings.TrimSuffix(strings.TrimPrefix(ln, "[]byte("), ")")
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("corpus line %q: %v", ln, err)
			}
			out = append(out, []byte(s))
		}
	}
	return out
}

// TestAppendResultGolden is the encoder's byte-identity contract: for every
// atlasgen corpus line and a set of edge results, AppendResult produces
// exactly json.Marshal's bytes.
func TestAppendResultGolden(t *testing.T) {
	check := func(t *testing.T, r Result) {
		t.Helper()
		want, wantErr := json.Marshal(r)
		got, gotErr := AppendResult(nil, r)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: json.Marshal=%v AppendResult=%v", wantErr, gotErr)
		}
		if wantErr == nil && !bytes.Equal(want, got) {
			t.Fatalf("bytes differ:\noracle: %s\nfast:   %s", want, got)
		}
	}

	for i, line := range corpusLines(t) {
		var r Result
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("corpus line %d does not decode: %v", i, err)
		}
		check(t, r)
	}

	mk := func(rtt float64) Result {
		return Result{
			MsmID: 1, PrbID: 2, Time: time.Unix(3, 0).UTC(), ParisID: 4,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("2001:db8::2"),
			Hops: []Hop{{Index: 1, Replies: []Reply{{From: netip.MustParseAddr("192.0.2.1"), RTT: rtt}}}},
		}
	}
	edges := map[string]Result{
		"zero result":     {},
		"no hops":         {Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2")},
		"empty replies":   {Hops: []Hop{{Index: 1, Replies: []Reply{}}}},
		"timeouts":        {Hops: []Hop{{Index: 1, Replies: []Reply{{Timeout: true}, {Timeout: true}}}}},
		"zoned addr":      {Src: netip.MustParseAddr("fe80::1%eth0"), Hops: []Hop{{Index: 1, Replies: []Reply{{From: netip.MustParseAddr("fe80::2%zone<&>\"\\"), RTT: 1}}}}},
		"v4-mapped":       {Src: netip.MustParseAddr("::ffff:1.2.3.4")},
		"negative times":  {Time: time.Unix(-9223372036854775808, 0).UTC()},
		"rtt zero":        mk(0),
		"rtt neg zero":    mk(math.Copysign(0, -1)),
		"rtt tiny":        mk(5e-324),
		"rtt small e":     mk(1e-7),
		"rtt boundary lo": mk(1e-6),
		"rtt huge":        mk(1e21),
		"rtt below huge":  mk(9.999999999999999e20),
		"rtt long tail":   mk(0.30000000000000004),
		"rtt max":         mk(math.MaxFloat64),
		"rtt nan":         mk(math.NaN()),
		"rtt +inf":        mk(math.Inf(1)),
		"rtt -inf":        mk(math.Inf(-1)),
	}
	for name, r := range edges {
		t.Run(name, func(t *testing.T) { check(t, r) })
	}

	for i := 0; i < 50; i++ {
		r := sampleResult()
		r.PrbID = i
		r.Hops[0].Replies[0].RTT = float64(i) * 1.0000000001e-7
		check(t, r)
	}
}

// TestWriterUsesFastEncoder pins that the stream writer's output is
// unchanged by the fast encoder (same bytes as json.Marshal + newline) and
// that encoder errors surface through Write.
func TestWriterUsesFastEncoder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	r := sampleResult()
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want)+"\n" {
		t.Fatalf("writer bytes differ:\ngot:  %q\nwant: %q", got, string(want)+"\n")
	}

	bad := sampleResult()
	bad.Hops[0].Replies[0].RTT = math.NaN()
	if err := w.Write(bad); err == nil {
		t.Fatal("expected error for NaN rtt")
	}
}
