// Package trace defines the traceroute data model shared by the measurement
// platform (producer) and the detectors (consumers): results, hops, replies,
// link keys, and a JSONL wire format closely modeled on the RIPE Atlas
// traceroute result schema.
//
// The boundary convention of the repository: RTTs cross this package as
// float64 milliseconds (the analysis plane works in ms, like the paper);
// time.Duration is only used inside the simulator.
package trace

import (
	"errors"
	"fmt"
	"net/netip"
	"time"
)

// Reply is one response (or timeout) to one traceroute packet at a given
// hop. Atlas sends three packets per hop, so hops carry up to three replies.
type Reply struct {
	From    netip.Addr // responder address; zero value when Timeout
	RTT     float64    // round-trip time in milliseconds; 0 when Timeout
	Timeout bool       // true when the packet got no response ("x":"*")
}

// Hop is the set of replies for one TTL value.
type Hop struct {
	Index   int // TTL, 1-based
	Replies []Reply
}

// Responders returns the distinct responding addresses of the hop, in
// first-seen order. Timeouts are skipped.
func (h Hop) Responders() []netip.Addr {
	return h.AppendResponders(nil)
}

// AppendResponders appends the distinct responding addresses of the hop to
// dst in first-seen order and returns the extended slice. Passing a
// stack-backed scratch slice (`var buf [8]netip.Addr; h.AppendResponders(buf[:0])`)
// keeps the hot extraction path allocation-free.
func (h Hop) AppendResponders(dst []netip.Addr) []netip.Addr {
	base := len(dst)
	for _, r := range h.Replies {
		if r.Timeout || !r.From.IsValid() {
			continue
		}
		dup := false
		for _, a := range dst[base:] {
			if a == r.From {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, r.From)
		}
	}
	return dst
}

// Unresponsive reports whether every packet of the hop timed out.
func (h Hop) Unresponsive() bool {
	for _, r := range h.Replies {
		if !r.Timeout && r.From.IsValid() {
			return false
		}
	}
	return true
}

// RTTs returns the RTT samples (ms) of replies from the given address.
func (h Hop) RTTs(from netip.Addr) []float64 {
	var out []float64
	for _, r := range h.Replies {
		if !r.Timeout && r.From == from {
			out = append(out, r.RTT)
		}
	}
	return out
}

// Result is one traceroute measurement result.
type Result struct {
	MsmID   int        // measurement ID (one per target, as in Atlas)
	PrbID   int        // probe ID
	Time    time.Time  // when the traceroute started
	Src     netip.Addr // probe address
	Dst     netip.Addr // traceroute target
	ParisID int        // Paris traceroute flow identifier
	Hops    []Hop
}

// Validate checks structural invariants: valid src/dst, hops present with
// ascending 1-based indices.
func (r Result) Validate() error {
	if !r.Src.IsValid() {
		return errors.New("trace: result has invalid source address")
	}
	if !r.Dst.IsValid() {
		return errors.New("trace: result has invalid destination address")
	}
	if len(r.Hops) == 0 {
		return errors.New("trace: result has no hops")
	}
	prev := 0
	for _, h := range r.Hops {
		if h.Index <= prev {
			return fmt.Errorf("trace: hop indices not ascending (%d after %d)", h.Index, prev)
		}
		prev = h.Index
	}
	return nil
}

// Reached reports whether the last hop responded with the destination
// address.
func (r Result) Reached() bool {
	if len(r.Hops) == 0 {
		return false
	}
	for _, rep := range r.Hops[len(r.Hops)-1].Replies {
		if !rep.Timeout && rep.From.IsValid() && rep.From == r.Dst {
			return true
		}
	}
	return false
}

// LinkKey identifies an IP-level link: an ordered pair of addresses observed
// at adjacent hops (Near closer to the probe). As §2 stresses, this is a
// pair of IP addresses, not necessarily a physical cable. LinkKey is
// comparable and suitable as a map key.
type LinkKey struct {
	Near netip.Addr
	Far  netip.Addr
}

// String renders "near>far".
func (k LinkKey) String() string { return k.Near.String() + ">" + k.Far.String() }

// Valid reports whether both endpoints are valid addresses and differ.
func (k LinkKey) Valid() bool {
	return k.Near.IsValid() && k.Far.IsValid() && k.Near != k.Far
}

// Reverse returns the link with endpoints swapped.
func (k LinkKey) Reverse() LinkKey { return LinkKey{Near: k.Far, Far: k.Near} }

// AdjacentHopPair is a pair of consecutive responsive hops of one result,
// used by the delay analyzer to form differential RTT samples.
type AdjacentHopPair struct {
	Near, Far Hop
}

// AdjacentPairs returns consecutive hop pairs with strictly consecutive TTL
// indices (a hop missing from the result breaks adjacency, exactly as an
// unresponsive router hides its links from the paper's delay analysis).
func (r Result) AdjacentPairs() []AdjacentHopPair {
	var out []AdjacentHopPair
	r.VisitAdjacentPairs(func(p AdjacentHopPair) {
		out = append(out, p)
	})
	return out
}

// VisitAdjacentPairs calls fn for every consecutive hop pair with strictly
// consecutive TTL indices, in hop order — AdjacentPairs without the slice
// allocation. Note the extractors (delay §4.2.1, forwarding §5.1) apply
// the same adjacency rule with their own index loops to keep scratch
// buffers closure-free; changing the rule means changing it there too.
func (r Result) VisitAdjacentPairs(fn func(AdjacentHopPair)) {
	for i := 0; i+1 < len(r.Hops); i++ {
		if r.Hops[i+1].Index == r.Hops[i].Index+1 {
			fn(AdjacentHopPair{Near: r.Hops[i], Far: r.Hops[i+1]})
		}
	}
}
