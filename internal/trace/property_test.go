package trace

import (
	"encoding/json"
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

// randomResult generates a structurally valid random result.
func randomResult(rng *rand.Rand) Result {
	addr := func() netip.Addr {
		return netip.AddrFrom4([4]byte{byte(rng.IntN(223) + 1), byte(rng.IntN(256)), byte(rng.IntN(256)), byte(rng.IntN(254) + 1)})
	}
	r := Result{
		MsmID:   rng.IntN(10000),
		PrbID:   rng.IntN(10000),
		Time:    time.Unix(int64(1430000000+rng.IntN(20000000)), 0).UTC(),
		Src:     addr(),
		Dst:     addr(),
		ParisID: rng.IntN(16),
	}
	hops := rng.IntN(12) + 1
	for h := 1; h <= hops; h++ {
		hop := Hop{Index: h}
		for p := 0; p < 3; p++ {
			if rng.Float64() < 0.15 {
				hop.Replies = append(hop.Replies, Reply{Timeout: true})
			} else {
				hop.Replies = append(hop.Replies, Reply{From: addr(), RTT: rng.Float64() * 300})
			}
		}
		r.Hops = append(r.Hops, hop)
	}
	return r
}

// Property: JSON round trip preserves every field of arbitrary results.
func TestJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 28))
	f := func() bool {
		orig := randomResult(rng)
		b, err := json.Marshal(orig)
		if err != nil {
			return false
		}
		var got Result
		if err := json.Unmarshal(b, &got); err != nil {
			return false
		}
		if got.MsmID != orig.MsmID || got.PrbID != orig.PrbID ||
			got.ParisID != orig.ParisID || !got.Time.Equal(orig.Time) ||
			got.Src != orig.Src || got.Dst != orig.Dst ||
			len(got.Hops) != len(orig.Hops) {
			return false
		}
		for i := range got.Hops {
			if got.Hops[i].Index != orig.Hops[i].Index ||
				len(got.Hops[i].Replies) != len(orig.Hops[i].Replies) {
				return false
			}
			for j := range got.Hops[i].Replies {
				if got.Hops[i].Replies[j] != orig.Hops[i].Replies[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AdjacentPairs returns only consecutive indices, and Validate
// accepts everything randomResult makes.
func TestStructuralProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 29))
	f := func() bool {
		r := randomResult(rng)
		if err := r.Validate(); err != nil {
			return false
		}
		for _, p := range r.AdjacentPairs() {
			if p.Far.Index != p.Near.Index+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
