package trace

import (
	"encoding/json"
	"testing"
)

func BenchmarkMarshal(b *testing.B) {
	r := sampleResult()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data, err := json.Marshal(sampleResult())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeResult compares the hand-rolled fast decoder against the
// encoding/json reference on the same wire line. The fast/reflect ratio is
// the single-line view of the BenchmarkIngest speedup.
func BenchmarkDecodeResult(b *testing.B) {
	line, err := json.Marshal(sampleResult())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast", func(b *testing.B) {
		var d Decoder
		var r Result
		b.ReportAllocs()
		b.SetBytes(int64(len(line)))
		for i := 0; i < b.N; i++ {
			if err := d.Decode(line, &r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reflect", func(b *testing.B) {
		var r Result
		b.ReportAllocs()
		b.SetBytes(int64(len(line)))
		for i := 0; i < b.N; i++ {
			if err := json.Unmarshal(line, &r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendResult compares the fast encoder against json.Marshal.
func BenchmarkAppendResult(b *testing.B) {
	r := sampleResult()
	b.Run("fast", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = AppendResult(buf[:0], r)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reflect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAdjacentPairs(b *testing.B) {
	r := sampleResult()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AdjacentPairs()
	}
}
