package trace

import (
	"encoding/json"
	"testing"
)

func BenchmarkMarshal(b *testing.B) {
	r := sampleResult()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	data, err := json.Marshal(sampleResult())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdjacentPairs(b *testing.B) {
	r := sampleResult()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AdjacentPairs()
	}
}
