package trace

import (
	"fmt"
	"math"
	"math/big"
	"math/rand/v2"
	"strconv"
	"testing"
)

// TestPow10WideTable recomputes every table entry with math/big: entry q
// must be the truncation of 10^q normalized to [2^127, 2^128) at binary
// exponent (217706·q>>16)−127. A single wrong word would silently produce
// misrounded floats, so the table is verified rather than trusted.
func TestPow10WideTable(t *testing.T) {
	if got, want := len(pow10wide), pow10wideMax-pow10wideMin+1; got != want {
		t.Fatalf("table has %d entries, want %d", got, want)
	}
	mask64 := new(big.Int).SetUint64(^uint64(0))
	for q := pow10wideMin; q <= pow10wideMax; q++ {
		shift := 127 - (217706*q)>>16
		m := new(big.Int)
		if q >= 0 {
			m.Exp(big.NewInt(10), big.NewInt(int64(q)), nil)
			if shift >= 0 {
				m.Lsh(m, uint(shift))
			} else {
				m.Rsh(m, uint(-shift))
			}
		} else {
			den := new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(-q)), nil)
			m.Lsh(big.NewInt(1), uint(shift))
			m.Div(m, den)
		}
		if m.BitLen() != 128 {
			t.Fatalf("1e%d: normalized form has %d bits, want 128", q, m.BitLen())
		}
		lo := new(big.Int).And(m, mask64).Uint64()
		hi := new(big.Int).Rsh(m, 64).Uint64()
		e := pow10wide[q-pow10wideMin]
		if e[0] != lo || e[1] != hi {
			t.Errorf("1e%d: table {%#x, %#x}, want {%#x, %#x}", q, e[0], e[1], lo, hi)
		}
	}
}

func checkEL(t *testing.T, man uint64, exp10 int, neg bool) {
	t.Helper()
	f, ok := eiselLemire64(man, exp10, neg)
	if !ok {
		return // declared ambiguous: caller falls back to ParseFloat
	}
	s := strconv.FormatUint(man, 10) + "e" + strconv.Itoa(exp10)
	if neg {
		s = "-" + s
	}
	want, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("oracle rejected %q: %v", s, err)
	}
	if gb, wb := math.Float64bits(f), math.Float64bits(want); gb != wb {
		t.Errorf("eiselLemire64(%d, %d, %v) = %v (%#x), ParseFloat(%q) = %v (%#x)",
			man, exp10, neg, f, gb, s, want, wb)
	}
}

// TestEiselLemireDifferential drives the kernel over the boundary shapes
// that break truncated-product implementations — powers of ten and two,
// all-nines mantissas, half-ulp neighbours — plus a large random sweep,
// and demands bit-identity with strconv.ParseFloat whenever ok=true.
func TestEiselLemireDifferential(t *testing.T) {
	edges := []uint64{
		0, 1, 2, 9, 10, 99, 100,
		1<<52 - 1, 1 << 52, 1<<52 + 1,
		1<<53 - 1, 1 << 53, 1<<53 + 1,
		1<<63 - 1, 1 << 63, 1<<63 + 1,
		^uint64(0), ^uint64(0) - 1,
		9999999999999999999, // 19 nines: largest scanNumber mantissa
		1000000000000000000,
		5404319552844595, // 0.6 × 2^53-ish tie neighbourhood
	}
	for _, man := range edges {
		for q := pow10wideMin - 2; q <= pow10wideMax+2; q++ {
			checkEL(t, man, q, false)
			checkEL(t, man, q, true)
		}
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for n := 0; n < 200000; n++ {
		man := rng.Uint64()
		if n%3 == 0 {
			man %= 100000000000000000 // 17 digits, the 'g' format ceiling
		}
		q := int(rng.Int64N(110)) - 55
		checkEL(t, man, q, n%2 == 1)
	}
}

// TestRTTLongMantissa feeds full-precision 'g'-formatted RTTs through the
// whole decoder (the rttField 16–19 digit path) against encoding/json.
func TestRTTLongMantissa(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for n := 0; n < 2000; n++ {
		rtt := rng.Float64() * 300 // typical RTT magnitudes, full precision
		line := fmt.Sprintf(`{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"10.0.0.1","rtt":%s}]}]}`,
			strconv.FormatFloat(rtt, 'g', -1, 64))
		r, err := assertDifferential(t, line)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		if got := r.Hops[0].Replies[0].RTT; math.Float64bits(got) != math.Float64bits(rtt) {
			t.Fatalf("rtt mismatch for %q: decoded %v want %v", line, got, rtt)
		}
	}
}
