package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// FuzzDecodeResult fuzzes the Atlas wire decoder with two invariants:
//
//  1. the decoder never panics — malformed input must fail with an error,
//     and artifact-laden input (timeouts, late/err packets, missing RTTs)
//     must degrade per the documented leniency rules, and
//  2. whatever the decoder accepts it round-trips: encoding the decoded
//     result and decoding it again yields the identical structure (decode
//     is a normalization, so decode∘encode is the identity on its image).
//
// The checked-in corpus under testdata/fuzz/FuzzDecodeResult holds lines
// drawn from atlasgen output; the seeds below add hand-written artifact
// cases from real-dump pathologies.
// fuzzSeeds are shared by FuzzDecodeResult and FuzzDecodeDifferential.
func fuzzSeeds() []string {
	return []string{
		// Canonical atlasgen-style line.
		`{"msm_id":5001,"prb_id":42,"timestamp":1448866800,"src_addr":"10.0.0.1","dst_addr":"193.0.14.129","paris_id":3,"result":[{"hop":1,"result":[{"from":"10.0.0.254","rtt":0.52},{"x":"*"}]}]}`,
		// IPv6 with compat fields.
		`{"src_addr":"2001:db8::1","dst_addr":"2001:db8::2","result":[{"hop":1,"result":[{"from":"2001:db8::3","rtt":1.25,"ttl":63,"size":28}]}]}`,
		// Artifact zoo: late packet, err entry, negative RTT.
		`{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","late":2},{"err":"N - network unreachable","from":"3.3.3.3","rtt":4.5},{"from":"3.3.3.3","rtt":-1}]}]}`,
		// Unresponsive gap and empty reply sets.
		`{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[]},{"hop":4,"result":[{"x":"*"},{"x":"*"}]}]}`,
		// Degenerate documents.
		`{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[]}`,
		`null`,
		`{}`,
		`{"timestamp":-9223372036854775808,"src_addr":"::","dst_addr":"0.0.0.0","result":[{"hop":-1,"result":[{"from":"::ffff:1.2.3.4","rtt":5e-324}]}]}`,
		// Zoned IPv6 and v4-mapped addresses.
		`{"src_addr":"fe80::1%eth0","dst_addr":"255.255.255.255","result":[{"hop":1,"result":[{"from":"fe80::2%0","rtt":1e3}]}]}`,
		// Escapes, folded keys, duplicate keys, exponent forms — fast-path
		// edge territory.
		`{"SRC_ADDR":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":1.25e1,"x":null}]}],"result":[]}`,
		`{"src_addr":"fe80::1%eth😀","dst_addr":"2.2.2.2","result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":0.30000000000000004}]}]}`,
	}
}

func FuzzDecodeResult(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			return // rejected input; the only obligation is not panicking
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("accepted result failed to encode: %v\ninput: %q", err, data)
		}
		var r2 Result
		if err := json.Unmarshal(b, &r2); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v\nencoded: %s", err, b)
		}
		if !reflect.DeepEqual(r, r2) {
			t.Fatalf("round-trip not stable:\ninput: %q\nfirst:  %#v\nsecond: %#v", data, r, r2)
		}
	})
}

// FuzzDecodeDifferential is the fast-path contract: for every input, the
// hand-rolled decoder (Decoder.Decode) and the encoding/json oracle
// (Result.UnmarshalJSON) either produce the same Result or both reject —
// and when they reject on a malformed address, they agree on which one.
// When both accept, the fast encoder must also reproduce the oracle
// encoder's bytes exactly.
func FuzzDecodeDifferential(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var want Result
		oracleErr := json.Unmarshal(data, &want)

		var got Result
		fastErr := DecodeResult(data, &got)

		if (oracleErr == nil) != (fastErr == nil) {
			t.Fatalf("accept/reject mismatch:\ninput: %q\noracle: %v\nfast:   %v", data, oracleErr, fastErr)
		}
		if oracleErr != nil {
			var wantAddr, gotAddr *AddrError
			if errors.As(oracleErr, &wantAddr) != errors.As(fastErr, &gotAddr) {
				t.Fatalf("AddrError mismatch:\ninput: %q\noracle: %v\nfast:   %v", data, oracleErr, fastErr)
			}
			if wantAddr != nil && (wantAddr.Field != gotAddr.Field || wantAddr.Value != gotAddr.Value) {
				t.Fatalf("AddrError detail mismatch:\ninput: %q\noracle: %v\nfast:   %v", data, oracleErr, fastErr)
			}
			return
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("decoded results differ:\ninput: %q\noracle: %#v\nfast:   %#v", data, want, got)
		}

		wantB, wantEncErr := json.Marshal(want)
		gotB, gotEncErr := AppendResult(nil, got)
		if (wantEncErr == nil) != (gotEncErr == nil) {
			t.Fatalf("encoder accept/reject mismatch:\noracle: %v\nfast: %v", wantEncErr, gotEncErr)
		}
		if wantEncErr == nil && !bytes.Equal(wantB, gotB) {
			t.Fatalf("encoded bytes differ:\noracle: %s\nfast:   %s", wantB, gotB)
		}
	})
}
