// Package pinpoint reproduces Fontugne, Aben, Pelsser & Bush,
// "Pinpointing Delay and Forwarding Anomalies Using Large-Scale Traceroute
// Measurements" (IMC 2017) as a Go library.
//
// It detects and localizes Internet data-plane disruptions from streams of
// traceroute results:
//
//   - delay changes per IP-level link via differential RTTs, robust medians
//     and Wilson-score confidence intervals (§4 of the paper),
//   - forwarding anomalies per router via learned next-hop patterns and
//     responsibility scores (§5),
//   - per-AS aggregation into severity time series, robust magnitudes and
//     major events (§6).
//
// This root package is the stable facade: it re-exports the pipeline types
// a downstream user needs. The implementation lives in internal/ packages
// (see DESIGN.md for the full inventory), including a network simulator and
// an Atlas-like measurement platform that stand in for the paper's RIPE
// Atlas dataset.
//
// # Quickstart
//
//	topo, _ := netsim.Generate(netsim.TopoConfig{Seed: 1})
//	net, _ := topo.Build(nil)
//	platform := atlas.NewPlatform(net, 1, netsim.TracerouteOpts{})
//	platform.AddProbes(topo.ProbeSites())
//	platform.AddBuiltin(topo.Roots[0].Addr)
//
//	analyzer := pinpoint.New(pinpoint.Config{RetainAlarms: true},
//		platform.ProbeASN, net.Prefixes())
//	platform.Run(from, to, func(r trace.Result) error {
//		analyzer.Observe(r)
//		return nil
//	})
//	analyzer.Flush()
//	events := analyzer.Aggregator().Events(from, to)
//
// Setting Config.Workers (or AutoWorkers) shards the detectors across CPU
// cores via internal/engine; the alarms, events and their order are
// guaranteed identical to a sequential run. The measurement platform
// parallelizes the same way (atlas.Platform.SetWorkers), and
// Analyzer.RunPlatform fuses generator workers and engine shards into one
// backpressured pipeline. See DESIGN.md for the shard, merge and reorder
// architecture.
//
// For serving results while analysis runs (§8), Analyzer.OnBinClose fires
// after each bin's alarms are fully dispatched; internal/serve builds the
// Internet Health Report's snapshot-published read model and HTTP API on
// that hook (see cmd/ihr and examples/streaming_ihr).
//
// See examples/ for complete programs, including the paper's three case
// studies; `go test -bench=.` regenerates the paper-versus-measured record.
package pinpoint

import (
	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/stats"
	"pinpoint/internal/trace"
)

// Config bundles the pipeline configuration; the zero value uses the
// paper's parameters (1-hour bins, z=1.96, ≥3 probe ASes, entropy > 0.5,
// 1 ms minimum shift, τ=−0.25, one-week magnitude windows) on the
// sequential path. Set Workers (or AutoWorkers) for the sharded engine.
type Config = core.Config

// AutoWorkers, assigned to Config.Workers, shards the analysis across all
// usable CPUs.
const AutoWorkers = core.AutoWorkers

// Analyzer is the end-to-end detection pipeline (§4 + §5 + §6).
type Analyzer = core.Analyzer

// New constructs an Analyzer. probeASN resolves probe ids to AS numbers;
// table maps IP addresses to ASes (longest prefix match).
func New(cfg Config, probeASN func(int) (ipmap.ASN, bool), table *ipmap.Table) *Analyzer {
	return core.New(cfg, probeASN, table)
}

// Traceroute data model.
type (
	// Result is one traceroute measurement result.
	Result = trace.Result
	// Hop is the set of replies at one TTL.
	Hop = trace.Hop
	// Reply is one response or timeout at a hop.
	Reply = trace.Reply
	// LinkKey identifies an IP-level link (ordered address pair).
	LinkKey = trace.LinkKey
)

// Detection outputs.
type (
	// DelayAlarm reports an abnormal delay change on one link (§4.2.3).
	DelayAlarm = delay.Alarm
	// ForwardingAlarm reports an anomalous forwarding pattern (§5.2).
	ForwardingAlarm = forwarding.Alarm
	// Event is a major per-AS disruption (magnitude peak, §6).
	Event = events.Event
	// MedianCI is a median with its Wilson-score confidence interval.
	MedianCI = stats.MedianCI
	// ASN is an autonomous system number.
	ASN = ipmap.ASN
)

// Deviation computes d(∆) of Eq 6 — the relative gap between an observed
// and a reference confidence interval.
func Deviation(observed, reference MedianCI) float64 {
	return delay.Deviation(observed, reference)
}

// MedianWilson computes a sample median with its Wilson-score confidence
// interval at the given z (use Z95 for the paper's 95% level).
func MedianWilson(samples []float64, z float64) MedianCI {
	return stats.MedianWilson(samples, z)
}

// Z95 is the normal quantile for 95% two-sided confidence.
const Z95 = stats.Z95
