package pinpoint_test

// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// §4 maps each to its harness). Each bench regenerates the artifact at Full
// scale and reports the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the regeneration and prints the measured values next to the
// paper's. Case-study runs are memoized across benches of the same figure
// family (F6–F8 share one DDoS run, F9–F12 one leak run, F5/T1 one
// campaign run), mirroring how the paper derives several figures from one
// dataset.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/experiments"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		r, err := e.Run(experiments.Full)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = r
	}
	if last == nil {
		return
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
	if failed := last.Failed(); len(failed) > 0 {
		for _, c := range failed {
			b.Logf("claim failed: %s — measured %s (paper %s)", c.Name, c.Measured, c.Paper)
		}
		b.Errorf("%s: %d paper claims failed", id, len(failed))
	}
}

func BenchmarkFig02MedianStability(b *testing.B) {
	runExperiment(b, "F2", "raw_stddev_ms", "median_band", "alarms")
}

func BenchmarkFig03Normality(b *testing.B) {
	runExperiment(b, "F3", "ppcc_median", "ppcc_mean", "outliers")
}

func BenchmarkFig04ForwardingExample(b *testing.B) {
	runExperiment(b, "F4", "rho")
}

func BenchmarkFig05aMagnitudeCCDF(b *testing.B) {
	runExperiment(b, "F5", "delay_below_1", "delay_max")
}

func BenchmarkFig05bForwardingCDF(b *testing.B) {
	runExperiment(b, "F5", "fwd_min", "fwd_below_-10")
}

func BenchmarkFig06KrootMagnitude(b *testing.B) {
	runExperiment(b, "F6", "peak_attack1", "peak_attack2", "peak_outside")
}

func BenchmarkFig07PerLinkDelays(b *testing.B) {
	runExperiment(b, "F7", "both_a1", "both_a2", "spared_alarms", "upstream_a1")
}

func BenchmarkFig08AlarmGraph(b *testing.B) {
	runExperiment(b, "F8", "component_nodes", "component_edges", "root_alarms")
}

func BenchmarkFig09LeakDelayMagnitude(b *testing.B) {
	runExperiment(b, "F9", "victim0_in_peak", "victim1_in_peak")
}

func BenchmarkFig10LeakForwardingMagnitude(b *testing.B) {
	runExperiment(b, "F10", "victim0_in_min", "victim1_in_min")
}

func BenchmarkFig11LeakLinks(b *testing.B) {
	runExperiment(b, "F11", "linkA_alarms", "linkA_shift_ms", "linkB_gap_bins", "linkB_late_alarms")
}

func BenchmarkFig12LeakGraph(b *testing.B) {
	runExperiment(b, "F12", "nodes", "edges", "flagged")
}

func BenchmarkFig13IXPOutage(b *testing.B) {
	runExperiment(b, "F13", "fwd_min_in", "delay_max_in", "lan_pairs")
}

func BenchmarkTab01AggregateStats(b *testing.B) {
	runExperiment(b, "T1", "links_seen", "alarm_fraction", "routers_modeled", "avg_next_hops")
}

func BenchmarkTab02DetectionLimits(b *testing.B) {
	runExperiment(b, "T2", "builtin_shortest_min", "anchoring_shortest_min")
}

func BenchmarkAbl01MedianVsMean(b *testing.B) {
	runExperiment(b, "A1", "median_alarms", "mean_alarms")
}

func BenchmarkAbl02DiversityFilter(b *testing.B) {
	runExperiment(b, "A2", "filtered_alarms", "unfiltered_alarms")
}

func BenchmarkAbl03ASCancellation(b *testing.B) {
	runExperiment(b, "A3", "net", "gross")
}

// Sharded-engine throughput: the same pre-generated campaign pushed through
// the analyzer at 1/2/4/8 workers. Workers=1 is the exact legacy sequential
// path and the baseline; higher counts exercise internal/engine's shard
// fan-out and parallel bin-close. Output is bit-identical across all rows
// (internal/engine tests assert it); this bench measures only ingest +
// bin-close wall time. results/s is the headline metric; the recorded
// baselines live in BENCH_engine.json. On a single-core host the rows
// should be within noise of each other — the speedup needs real cores.

// benchStart and benchPlatform define the one benchmark campaign both the
// engine and pipeline fixtures share (the recorded baselines in
// BENCH_engine.json and BENCH_pipeline.json assume the same workload):
// seed-42 topology, all stub probes, one builtin root measurement, three
// anchoring measurements, 24 hours. Only the scenario differs per fixture.
var benchStart = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

func benchPlatform(scenario *netsim.Scenario) (*atlas.Platform, error) {
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: 42, Tier1: 3, Transit: 8, Stub: 24,
		Roots: 1, RootInstances: 4, Anchors: 4,
	})
	if err != nil {
		return nil, err
	}
	net, err := topo.Build(scenario)
	if err != nil {
		return nil, err
	}
	platform := atlas.NewPlatform(net, 42, netsim.TracerouteOpts{})
	platform.AddProbes(topo.ProbeSites())
	platform.AddBuiltin(topo.Roots[0].Addr)
	var ids []int
	for _, pr := range platform.Probes() {
		ids = append(ids, pr.ID)
	}
	for _, a := range topo.Anchors[:3] {
		platform.AddAnchoring(a.Addr, ids)
	}
	return platform, nil
}

// benchCongestion recreates the engine fixture's 2-hour congestion event on
// the root's first instance link.
func benchCongestion(topoSeed uint64) (*netsim.Scenario, error) {
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: topoSeed, Tier1: 3, Transit: 8, Stub: 24,
		Roots: 1, RootInstances: 4, Anchors: 4,
	})
	if err != nil {
		return nil, err
	}
	root := topo.Roots[0]
	return netsim.NewScenario(netsim.Event{
		Name: "congestion", Kind: netsim.EventCongestion,
		From: root.Sites[0], To: root.Instances[0], Both: true,
		ExtraDelayMS: 80, Loss: 0.02,
		Start: benchStart.Add(12 * time.Hour), End: benchStart.Add(14 * time.Hour),
	}), nil
}

var (
	engineBenchOnce    sync.Once
	engineBenchResults []trace.Result
	engineBenchASN     func(int) (ipmap.ASN, bool)
	engineBenchTable   *ipmap.Table
	engineBenchErr     error
)

func engineBenchFixture(b *testing.B) {
	b.Helper()
	engineBenchOnce.Do(func() {
		scenario, err := benchCongestion(42)
		if err != nil {
			engineBenchErr = err
			return
		}
		platform, err := benchPlatform(scenario)
		if err != nil {
			engineBenchErr = err
			return
		}
		engineBenchResults, engineBenchErr = platform.Collect(benchStart, benchStart.Add(24*time.Hour))
		engineBenchASN = platform.ProbeASN
		engineBenchTable = platform.Net().Prefixes()
	})
	if engineBenchErr != nil {
		b.Fatalf("engine bench fixture: %v", engineBenchErr)
	}
}

// BenchmarkIngest isolates the sample-extraction + detector-ingest path —
// the per-result work the identity layer (internal/ident) and the columnar
// detector state are designed to make allocation-free. It drives the two
// sequential detectors directly, without the engine or the aggregator, so
// allocs/op tracks exactly the path BENCH_ident.json records.
func BenchmarkIngest(b *testing.B) {
	engineBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dd := delay.NewDetector(delay.Config{Seed: 1}, engineBenchASN)
		fd := forwarding.NewDetector(forwarding.Config{})
		for _, r := range engineBenchResults {
			dd.Observe(r)
			fd.Observe(r)
		}
		dd.Flush()
		fd.Flush()
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(len(engineBenchResults))/perOp, "results/s")
	}
}

// End-to-end fused pipeline: generation AND analysis, scaled together. Each
// op regenerates the 24h campaign through Analyzer.RunPlatform with w
// generator workers feeding w engine shards (workers=1 is fully sequential:
// heap scheduler → legacy detector pair on one goroutine). The parallel
// stream is bit-identical to sequential (internal/atlas and internal/core
// equivalence tests), so rows differ only in wall time. results/s is the
// headline; baselines live in BENCH_pipeline.json. On a single-core host
// the rows measure coordination overhead, not speedup.

var (
	pipelineBenchOnce sync.Once
	pipelineBenchPlat *atlas.Platform
	pipelineBenchErr  error
)

func pipelineBenchFixture(b *testing.B) {
	b.Helper()
	pipelineBenchOnce.Do(func() {
		pipelineBenchPlat, pipelineBenchErr = benchPlatform(nil)
	})
	if pipelineBenchErr != nil {
		b.Fatalf("pipeline bench fixture: %v", pipelineBenchErr)
	}
}

func BenchmarkPipeline(b *testing.B) {
	pipelineBenchFixture(b)
	start, end := benchStart, benchStart.Add(24*time.Hour)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				pipelineBenchPlat.SetWorkers(workers)
				a := core.New(core.Config{Workers: workers},
					pipelineBenchPlat.ProbeASN, pipelineBenchPlat.Net().Prefixes())
				if err := a.RunPlatform(context.Background(), pipelineBenchPlat, start, end); err != nil {
					b.Fatal(err)
				}
				total = a.Results()
				a.Close()
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(total)/perOp, "results/s")
			}
		})
	}
}

func BenchmarkAnalyzerSharded(b *testing.B) {
	engineBenchFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := core.New(core.Config{Workers: workers}, engineBenchASN, engineBenchTable)
				a.ObserveBatch(engineBenchResults)
				a.Flush()
				a.Close()
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(len(engineBenchResults))/perOp, "results/s")
			}
		})
	}
}
