package pinpoint_test

// One benchmark per table and figure of the paper's evaluation (DESIGN.md
// §4 maps each to its harness). Each bench regenerates the artifact at Full
// scale and reports the headline numbers via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both times the regeneration and prints the measured values next to the
// paper's. Case-study runs are memoized across benches of the same figure
// family (F6–F8 share one DDoS run, F9–F12 one leak run, F5/T1 one
// campaign run), mirroring how the paper derives several figures from one
// dataset.

import (
	"testing"

	"pinpoint/internal/experiments"
)

func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Report
	for i := 0; i < b.N; i++ {
		r, err := e.Run(experiments.Full)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = r
	}
	if last == nil {
		return
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
	if failed := last.Failed(); len(failed) > 0 {
		for _, c := range failed {
			b.Logf("claim failed: %s — measured %s (paper %s)", c.Name, c.Measured, c.Paper)
		}
		b.Errorf("%s: %d paper claims failed", id, len(failed))
	}
}

func BenchmarkFig02MedianStability(b *testing.B) {
	runExperiment(b, "F2", "raw_stddev_ms", "median_band", "alarms")
}

func BenchmarkFig03Normality(b *testing.B) {
	runExperiment(b, "F3", "ppcc_median", "ppcc_mean", "outliers")
}

func BenchmarkFig04ForwardingExample(b *testing.B) {
	runExperiment(b, "F4", "rho")
}

func BenchmarkFig05aMagnitudeCCDF(b *testing.B) {
	runExperiment(b, "F5", "delay_below_1", "delay_max")
}

func BenchmarkFig05bForwardingCDF(b *testing.B) {
	runExperiment(b, "F5", "fwd_min", "fwd_below_-10")
}

func BenchmarkFig06KrootMagnitude(b *testing.B) {
	runExperiment(b, "F6", "peak_attack1", "peak_attack2", "peak_outside")
}

func BenchmarkFig07PerLinkDelays(b *testing.B) {
	runExperiment(b, "F7", "both_a1", "both_a2", "spared_alarms", "upstream_a1")
}

func BenchmarkFig08AlarmGraph(b *testing.B) {
	runExperiment(b, "F8", "component_nodes", "component_edges", "root_alarms")
}

func BenchmarkFig09LeakDelayMagnitude(b *testing.B) {
	runExperiment(b, "F9", "victim0_in_peak", "victim1_in_peak")
}

func BenchmarkFig10LeakForwardingMagnitude(b *testing.B) {
	runExperiment(b, "F10", "victim0_in_min", "victim1_in_min")
}

func BenchmarkFig11LeakLinks(b *testing.B) {
	runExperiment(b, "F11", "linkA_alarms", "linkA_shift_ms", "linkB_gap_bins", "linkB_late_alarms")
}

func BenchmarkFig12LeakGraph(b *testing.B) {
	runExperiment(b, "F12", "nodes", "edges", "flagged")
}

func BenchmarkFig13IXPOutage(b *testing.B) {
	runExperiment(b, "F13", "fwd_min_in", "delay_max_in", "lan_pairs")
}

func BenchmarkTab01AggregateStats(b *testing.B) {
	runExperiment(b, "T1", "links_seen", "alarm_fraction", "routers_modeled", "avg_next_hops")
}

func BenchmarkTab02DetectionLimits(b *testing.B) {
	runExperiment(b, "T2", "builtin_shortest_min", "anchoring_shortest_min")
}

func BenchmarkAbl01MedianVsMean(b *testing.B) {
	runExperiment(b, "A1", "median_alarms", "mean_alarms")
}

func BenchmarkAbl02DiversityFilter(b *testing.B) {
	runExperiment(b, "A2", "filtered_alarms", "unfiltered_alarms")
}

func BenchmarkAbl03ASCancellation(b *testing.B) {
	runExperiment(b, "A3", "net", "gross")
}
