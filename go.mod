module pinpoint

go 1.24
