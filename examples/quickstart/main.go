// Quickstart: build a small simulated Internet, inject one congestion
// event, run Atlas-like measurements through the detection pipeline, and
// print what the detectors found and where.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"pinpoint"
	"pinpoint/internal/atlas"
	"pinpoint/internal/netsim"
)

func main() {
	log.SetFlags(0)

	// 1. A small Internet: 2 tier-1s, 4 transit ASes, 12 probe-hosting
	//    stubs, one anycast root service with 3 instances.
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: 7, Tier1: 2, Transit: 4, Stub: 12,
		Roots: 1, RootInstances: 3, Anchors: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inject 2 hours of congestion on the last-hop link of the first
	//    root instance, starting 36 hours in.
	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	evStart := start.Add(36 * time.Hour)
	evEnd := evStart.Add(2 * time.Hour)
	root := topo.Roots[0]
	scenario := netsim.NewScenario(netsim.Event{
		Name: "congestion", Kind: netsim.EventCongestion,
		From: root.Sites[0], To: root.Instances[0], Both: true,
		ExtraDelayMS: 80, Loss: 0.02,
		Start: evStart, End: evEnd,
	})
	net, err := topo.Build(scenario)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The measurement platform: one probe per stub AS, builtin
	//    traceroutes to the root every 30 minutes (the paper's cadence).
	platform := atlas.NewPlatform(net, 7, netsim.TracerouteOpts{})
	platform.AddProbes(topo.ProbeSites())
	platform.AddBuiltin(root.Addr)

	// 4. The analysis pipeline with the paper's default parameters.
	analyzer := pinpoint.New(pinpoint.Config{RetainAlarms: true},
		platform.ProbeASN, net.Prefixes())

	end := start.Add(48 * time.Hour)
	err = platform.Run(start, end, func(r pinpoint.Result) error {
		analyzer.Observe(r)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	analyzer.Flush()

	// 5. Report. Delay alarms pinpoint the congested link by IP pair.
	fmt.Printf("processed %d traceroutes over %s\n", analyzer.Results(), end.Sub(start))
	fmt.Printf("congestion injected %s .. %s on link %s > %s\n\n",
		evStart.Format("Jan 2 15:04"), evEnd.Format("15:04"),
		net.Router(root.Sites[0]).Addr, root.Addr)

	for _, al := range analyzer.DelayAlarms() {
		marker := " "
		if !al.Bin.Before(evStart) && al.Bin.Before(evEnd) {
			marker = "*" // inside the injected window
		}
		fmt.Printf("%s %s  %-35s shift %6.1f ms  deviation %7.1f  (%d probes, %d ASes)\n",
			marker, al.Bin.Format("Jan 2 15:04"), al.Link, al.DiffMS, al.Deviation,
			al.Probes, al.ASes)
	}

	// 6. AS-level view: the root operator's AS should peak in the window.
	mags := analyzer.Aggregator().DelayMagnitude(root.ASN, start.Add(24*time.Hour), end)
	var peak float64
	var peakT time.Time
	for _, p := range mags {
		if p.V > peak {
			peak, peakT = p.V, p.T
		}
	}
	fmt.Printf("\n%s delay-change magnitude peaks at %s (%.0f)\n",
		root.ASN, peakT.Format("Jan 2 15:04"), peak)
	if !peakT.Before(evStart) && peakT.Before(evEnd) {
		fmt.Println("→ the event was pinpointed in time and space.")
	}
}
