// Exchange-point outage (the paper's §7.3 case study, analog of the AMS-IX
// incident of May 13 2015): the peering LAN stops switching packets. No
// delay signal exists — probes simply vanish — so only the packet
// forwarding model sees the event, as a surge of unresponsive next hops in
// the IXP prefix.
//
//	go run ./examples/ixp_outage
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"pinpoint"
	"pinpoint/internal/experiments"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/report"
)

func main() {
	log.SetFlags(0)

	c, err := experiments.NewCase("ixp", experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Description)
	win := c.EventWindows[0]
	fmt.Printf("outage window: %s .. %s\n\n", win[0].Format("Jan 2 15:04"), win[1].Format("15:04"))

	analyzer := pinpoint.New(pinpoint.Config{RetainAlarms: true},
		c.Platform.ProbeASN, c.Net.Prefixes())
	if err := c.Platform.Run(c.Start, c.End, func(r pinpoint.Result) error {
		analyzer.Observe(r)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	analyzer.Flush()

	ixp := c.Topo.IXPs[0]
	prefix := netip.MustParsePrefix(ixp.Prefix)
	agg := analyzer.Aggregator()

	// Fig 13: the forwarding magnitude of the peering-LAN AS dips sharply;
	// the delay magnitude stays quiet (nothing to measure when packets are
	// gone).
	fm := agg.ForwardingMagnitude(ixp.ASN, c.Start.Add(24*time.Hour), c.End)
	fmt.Println(report.TimeSeries(fmt.Sprintf("%s (%s) forwarding magnitude (Fig 13)", ixp.ASN, ixp.Name), fm, 8))

	dm := agg.DelayMagnitude(ixp.ASN, c.Start.Add(24*time.Hour), c.End)
	maxDelay := 0.0
	for _, p := range dm {
		if p.V > maxDelay {
			maxDelay = p.V
		}
	}
	fmt.Printf("max delay magnitude for %s over the run: %.1f (the delay method is blind here)\n\n",
		ixp.ASN, maxDelay)

	// The paper's "770 unresponsive IP pairs": which peers could not
	// exchange traffic.
	pairs := map[string]float64{}
	for _, al := range analyzer.ForwardingAlarms() {
		if al.Bin.Before(win[0]) || !al.Bin.Before(win[1]) {
			continue
		}
		for _, h := range al.Hops {
			if h.Hop == forwarding.Unresponsive || !h.Hop.IsValid() {
				continue
			}
			if prefix.Contains(h.Hop) && h.Responsibility < 0 {
				pairs[al.Router.String()+" > "+h.Hop.String()] += h.Responsibility
			}
		}
	}
	fmt.Printf("unresponsive peering-LAN pairs during the outage: %d\n", len(pairs))
	rows := [][]string{{"pair (router > LAN next hop)", "Σ responsibility"}}
	for k, v := range pairs {
		rows = append(rows, []string{k, fmt.Sprintf("%.2f", v)})
	}
	fmt.Print(report.Table(rows))
}
