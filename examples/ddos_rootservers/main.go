// DDoS on the DNS root servers (the paper's §7.1 case study, analog of
// Nov 30 / Dec 1 2015): anycast root instances are congested in two attack
// windows; the pipeline localizes which instances suffered, which were
// spared by anycast, and how far upstream the damage reached.
//
//	go run ./examples/ddos_rootservers
package main

import (
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"pinpoint"
	"pinpoint/internal/experiments"
	"pinpoint/internal/report"
)

func main() {
	log.SetFlags(0)

	c, err := experiments.NewCase("ddos", experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Description)
	for _, w := range c.EventWindows {
		fmt.Printf("attack window: %s .. %s\n", w[0].Format("Jan 2 15:04"), w[1].Format("Jan 2 15:04"))
	}
	fmt.Println()

	analyzer := pinpoint.New(pinpoint.Config{RetainAlarms: true},
		c.Platform.ProbeASN, c.Net.Prefixes())
	if err := c.Platform.Run(c.Start, c.End, func(r pinpoint.Result) error {
		analyzer.Observe(r)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	analyzer.Flush()

	root := c.Topo.Roots[0]
	fmt.Printf("root service %s (operator %s), %d anycast instances\n",
		root.Addr, root.ASN, len(root.Instances))

	// Fig 6: the operator AS magnitude reveals both attacks.
	mags := analyzer.Aggregator().DelayMagnitude(root.ASN, c.Start.Add(24*time.Hour), c.End)
	fmt.Println(report.TimeSeries(fmt.Sprintf("%s delay change magnitude (Fig 6)", root.ASN), mags, 8))

	// Fig 7: which last-hop links (instance) alarmed, per attack window.
	perLink := map[string][2]int{}
	for _, al := range analyzer.DelayAlarms() {
		if al.Link.Far != root.Addr && al.Link.Near != root.Addr {
			continue
		}
		k := al.Link.String()
		c0 := perLink[k]
		if !al.Bin.Before(c.EventWindows[0][0]) && al.Bin.Before(c.EventWindows[0][1]) {
			c0[0]++
		}
		if !al.Bin.Before(c.EventWindows[1][0]) && al.Bin.Before(c.EventWindows[1][1]) {
			c0[1]++
		}
		perLink[k] = c0
	}
	rows := [][]string{{"last-hop link to root", "alarms attack 1", "alarms attack 2"}}
	for k, v := range perLink {
		rows = append(rows, []string{k, fmt.Sprintf("%d", v[0]), fmt.Sprintf("%d", v[1])})
	}
	fmt.Println(report.Table(rows))

	// Fig 8: the alarm graph component around the root at the first peak.
	g := analyzer.Graph(c.EventWindows[0][0], c.EventWindows[0][1])
	nodes := g.ComponentNodes(root.Addr)
	fmt.Printf("alarm-graph component around %s during attack 1: %d addresses (DOT below)\n\n",
		root.Addr, len(nodes))
	anycast := map[netip.Addr]bool{}
	for _, rt := range c.Topo.Roots {
		anycast[rt.Addr] = true
	}
	if err := g.WriteDOT(os.Stdout, root.Addr, anycast); err != nil {
		log.Fatal(err)
	}
}
