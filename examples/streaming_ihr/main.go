// Streaming analysis (the paper's §8 deployment shape): results flow into
// the analyzer, and as each analysis bin closes the serving layer publishes
// an immutable snapshot — alarms, incrementally maintained per-AS
// magnitudes and events — with one atomic pointer swap, plus a delta to
// every subscriber. This is exactly the read model cmd/ihr serves over
// HTTP; here the deltas and the final snapshot are printed instead.
//
//	go run ./examples/streaming_ihr
package main

import (
	"context"
	"fmt"
	"log"

	"pinpoint"
	"pinpoint/internal/experiments"
	"pinpoint/internal/serve"
)

func main() {
	log.SetFlags(0)

	c, err := experiments.NewCase("ddos", experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming case %q: %s\n\n", c.Name, c.Description)

	// AutoWorkers shards the detectors across every CPU; the alarms (and
	// their order) are identical to a sequential run.
	analyzer := pinpoint.New(pinpoint.Config{Workers: pinpoint.AutoWorkers},
		c.Platform.ProbeASN, c.Net.Prefixes())
	defer analyzer.Close()

	// The publisher hooks the analyzer's alarm and bin-close callbacks: no
	// further wiring, no locks. Subscribers receive one delta per closed
	// bin; HTTP handlers would read pub.Snapshot() instead.
	pub := serve.NewPublisher(analyzer, serve.Meta{
		Case: c.Name, Description: c.Description,
		Start: c.Start, End: c.End,
	})
	sub := pub.Subscribe()
	defer sub.Cancel()
	deltas := sub.C
	done := make(chan struct{})
	go func() {
		defer close(done)
		shown := 0
		for d := range deltas {
			if busy := len(d.DelayAlarms)+len(d.FwdAlarms)+len(d.Events) > 0; busy && shown < 10 {
				fmt.Printf("bin %s closed: +%d delay, +%d fwd, +%d events (snapshot seq %d)\n",
					d.Bin.Format("Jan 2 15:04"), len(d.DelayAlarms), len(d.FwdAlarms), len(d.Events), d.Seq)
				for _, e := range d.Events {
					fmt.Printf("  live event: %s %s mag=%.1f\n", e.ASN, e.Type, e.Magnitude)
				}
				shown++
			}
			// The terminal delta is usually empty (the last data bin was
			// already published at Flush) — check it on every delta, quiet
			// or not.
			if d.Done || d.Failed {
				return
			}
		}
	}()

	ctx := context.Background()
	batches, errc := c.Platform.StreamBatches(ctx, c.Start, c.End, 0)
	if err := analyzer.RunBatches(ctx, batches); err != nil {
		log.Fatal(err)
	}
	if err := <-errc; err != nil {
		pub.Finish(err)
		log.Fatal(err)
	}
	pub.Finish(nil)
	<-done

	snap := pub.Snapshot()
	fmt.Printf("\nstream complete: %d results, %d delay alarms, %d forwarding alarms (done=%v)\n",
		snap.Results, len(snap.DelayAlarms), len(snap.FwdAlarms), snap.Done)
	fmt.Printf("major events: %d\n", len(snap.Events))
	for _, e := range snap.Events {
		fmt.Printf("  %s %s %s mag=%.1f\n", e.Bin.Format("2006-01-02T15:04"), e.ASN, e.Type, e.Magnitude)
	}
}
