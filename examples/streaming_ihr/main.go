// Streaming analysis (the paper's §8 deployment shape): results flow
// through a channel into the analyzer, and alarms surface through hooks as
// soon as their bin closes — no buffering of the whole dataset. This is the
// pattern cmd/ihr builds its HTTP API on.
//
//	go run ./examples/streaming_ihr
package main

import (
	"context"
	"fmt"
	"log"

	"pinpoint"
	"pinpoint/internal/experiments"
)

func main() {
	log.SetFlags(0)

	c, err := experiments.NewCase("ddos", experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming case %q: %s\n\n", c.Name, c.Description)

	// AutoWorkers shards the detectors across every CPU; the alarms (and
	// their order) are identical to a sequential run.
	analyzer := pinpoint.New(pinpoint.Config{Workers: pinpoint.AutoWorkers},
		c.Platform.ProbeASN, c.Net.Prefixes())
	defer analyzer.Close()

	// Hooks fire in near real time, as each analysis bin completes.
	delayCount, fwdCount := 0, 0
	analyzer.OnDelayAlarm = func(al pinpoint.DelayAlarm) {
		delayCount++
		if delayCount <= 8 {
			fmt.Printf("live delay alarm   %s %s shift=%.1fms\n",
				al.Bin.Format("Jan 2 15:04"), al.Link, al.DiffMS)
		}
	}
	analyzer.OnForwardingAlarm = func(al pinpoint.ForwardingAlarm) {
		fwdCount++
		if fwdCount <= 8 {
			top, _ := al.MaxResponsibility()
			fmt.Printf("live fwd alarm     %s router=%s ρ=%.2f top-hop=%s\n",
				al.Bin.Format("Jan 2 15:04"), al.Router, al.Rho, top.Hop)
		}
	}

	ctx := context.Background()
	batches, errc := c.Platform.StreamBatches(ctx, c.Start, c.End, 0)
	if err := analyzer.RunBatches(ctx, batches); err != nil {
		log.Fatal(err)
	}
	if err := <-errc; err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nstream complete: %d results, %d delay alarms, %d forwarding alarms\n",
		analyzer.Results(), delayCount, fwdCount)
	evs := analyzer.Aggregator().Events(c.Start, c.End)
	fmt.Printf("major events: %d\n", len(evs))
	for _, e := range evs {
		fmt.Printf("  %s\n", e)
	}
}
