// BGP route leak congesting a tier-1 backbone (the paper's §7.2 case
// study, analog of the Telekom Malaysia leak of June 12 2015): leaked
// routes drag traffic through two victim transit networks whose links
// congest and drop packets. The example shows the two complementary
// detectors working together: delay changes where samples survive,
// forwarding anomalies where packets vanish.
//
//	go run ./examples/route_leak
package main

import (
	"fmt"
	"log"
	"time"

	"pinpoint"
	"pinpoint/internal/experiments"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/report"
)

func main() {
	log.SetFlags(0)

	c, err := experiments.NewCase("leak", experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Description)
	win := c.EventWindows[0]
	fmt.Printf("leak window: %s .. %s\n\n", win[0].Format("Jan 2 15:04"), win[1].Format("15:04"))

	analyzer := pinpoint.New(pinpoint.Config{RetainAlarms: true},
		c.Platform.ProbeASN, c.Net.Prefixes())
	if err := c.Platform.Run(c.Start, c.End, func(r pinpoint.Result) error {
		analyzer.Observe(r)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	analyzer.Flush()

	// Rank ASes by delay severity during the leak window — the victims
	// surface without any prior knowledge of the scenario.
	agg := analyzer.Aggregator()
	type hit struct {
		asn ipmap.ASN
		dev float64
	}
	totals := map[ipmap.ASN]float64{}
	for _, al := range analyzer.DelayAlarms() {
		if al.Bin.Before(win[0]) || !al.Bin.Before(win[1]) {
			continue
		}
		for _, asn := range lookupBoth(c, al) {
			totals[asn] += al.Deviation
		}
	}
	var hits []hit
	for asn, dev := range totals {
		hits = append(hits, hit{asn, dev})
	}
	for i := 0; i < len(hits); i++ {
		for j := i + 1; j < len(hits); j++ {
			if hits[j].dev > hits[i].dev {
				hits[i], hits[j] = hits[j], hits[i]
			}
		}
	}
	rows := [][]string{{"AS", "Σ deviation during leak"}}
	for i, h := range hits {
		if i >= 5 {
			break
		}
		rows = append(rows, []string{h.asn.String(), fmt.Sprintf("%.0f", h.dev)})
	}
	fmt.Println(report.Table(rows))

	// Magnitude series for the top victim: positive delay peak and negative
	// forwarding dip in the same window (Figs 9 and 10).
	if len(hits) > 0 {
		victim := hits[0].asn
		dm := agg.DelayMagnitude(victim, c.Start.Add(24*time.Hour), c.End)
		fm := agg.ForwardingMagnitude(victim, c.Start.Add(24*time.Hour), c.End)
		fmt.Println(report.TimeSeries(fmt.Sprintf("%s delay magnitude (Fig 9)", victim), dm, 6))
		fmt.Println(report.TimeSeries(fmt.Sprintf("%s forwarding magnitude (Fig 10)", victim), fm, 6))
	}

	// Forwarding anomalies during the loss hour cover the delay detector's
	// blind spot (Fig 11b's complementarity).
	fwdInWindow := 0
	for _, al := range analyzer.ForwardingAlarms() {
		if !al.Bin.Before(win[0]) && al.Bin.Before(win[1]) {
			fwdInWindow++
		}
	}
	fmt.Printf("forwarding anomalies during the leak window: %d\n", fwdInWindow)
}

// lookupBoth maps both link endpoints to ASes, de-duplicated — the same
// multi-AS assignment rule §6 uses.
func lookupBoth(c *experiments.Case, al pinpoint.DelayAlarm) []ipmap.ASN {
	var out []ipmap.ASN
	if asn, ok := c.Net.Prefixes().Lookup(al.Link.Near); ok {
		out = append(out, asn)
	}
	if asn, ok := c.Net.Prefixes().Lookup(al.Link.Far); ok && (len(out) == 0 || out[0] != asn) {
		out = append(out, asn)
	}
	return out
}
