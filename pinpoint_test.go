package pinpoint_test

import (
	"testing"
	"time"

	"pinpoint"
	"pinpoint/internal/atlas"
	"pinpoint/internal/netsim"
)

// TestFacadeEndToEnd exercises the public API exactly as the package doc
// shows: generate a network, run measurements, analyze, query events.
func TestFacadeEndToEnd(t *testing.T) {
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: 5, Tier1: 2, Transit: 4, Stub: 12, Roots: 1, RootInstances: 3, Anchors: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	platform := atlas.NewPlatform(net, 5, netsim.TracerouteOpts{})
	platform.AddProbes(topo.ProbeSites())
	platform.AddBuiltin(topo.Roots[0].Addr)

	from := time.Date(2015, 7, 1, 0, 0, 0, 0, time.UTC)
	to := from.Add(12 * time.Hour)

	analyzer := pinpoint.New(pinpoint.Config{RetainAlarms: true}, platform.ProbeASN, net.Prefixes())
	if err := platform.Run(from, to, func(r pinpoint.Result) error {
		analyzer.Observe(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	analyzer.Flush()

	if analyzer.Results() == 0 {
		t.Fatal("no results processed")
	}
	// A healthy network should produce few or no events.
	evs := analyzer.Aggregator().Events(from, to)
	if len(evs) > 3 {
		t.Errorf("healthy network produced %d events", len(evs))
	}
}

func TestFacadeStatistics(t *testing.T) {
	ci := pinpoint.MedianWilson([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, pinpoint.Z95)
	if ci.Median != 5 {
		t.Errorf("median = %v", ci.Median)
	}
	ref := pinpoint.MedianCI{Median: 5, Lower: 4, Upper: 6, N: 9}
	obs := pinpoint.MedianCI{Median: 10, Lower: 9, Upper: 11, N: 9}
	if d := pinpoint.Deviation(obs, ref); d <= 0 {
		t.Errorf("deviation = %v, want > 0", d)
	}
	k := pinpoint.LinkKey{}
	if k.Valid() {
		t.Error("zero LinkKey should be invalid")
	}
}
